"""The serving daemon: snapshots + write-ahead log + a line-JSON protocol.

A :class:`ServingDaemon` owns one *backend* — a materialized program
(:class:`ProgramBackend`) or a quality session (:class:`QualityBackend`) —
and makes it durable and network-reachable:

* **Recovery** (:meth:`ServingDaemon.recover`): restore the newest
  snapshot in the data directory, truncate the WAL's torn tail, replay
  every record past the snapshot's cut through the backend's own
  maintained-answer update path, and reopen the log for appending.  A
  virgin directory bootstraps (chases) the backend and takes the initial
  checkpoint instead.
* **Writes**: each ``add_facts``/``retract_facts`` request is appended to
  the WAL (fsynced) *before* it is applied and acknowledged — an
  acknowledged update is always durable, and recovery can never know less
  than a client does.  Concurrent writers go through a **group-commit**
  queue (:meth:`ServingDaemon.apply_write`): a dedicated committer thread
  appends every queued frame with a single flush + fsync, applies in LSN
  order, then wakes the writers — N writers share one fsync instead of
  paying N.
* **Reads** run through the engine's MVCC read transactions: every request
  pins one published version, and clients may hold explicit pins
  (``pin``/``unpin``) to keep answering against a fixed version while
  writes continue.
* **Checkpoints** (:mod:`repro.serving.compaction`) run inline on the
  write path when the compaction policy fires, and on demand via the
  ``checkpoint`` request.

Protocol: one JSON object per line (UTF-8, ``\\n``-terminated) in both
directions.  Requests carry ``op`` plus arguments and an optional ``id``;
responses are ``{"ok": true, "result": ...}`` or ``{"ok": false,
"error": ..., "error_type": ...}``, echoing the ``id``.  The
:mod:`repro.serving.client` module wraps this in the in-process session
API.

Run standalone with::

    python -m repro.serving.daemon --data-dir ./serving-data

which serves the hospital scenario's quality session by default (pass
``--program rules.dlg`` for a plain Datalog± program).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socketserver
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..datalog.chase import Fact
from ..datalog.parser import parse_program
from ..engine.session import MaterializedProgram, UpdateResult
from ..engine.snapshot import encode_row, load_program, wal_position
from ..engine.stats import ServingStats
from ..errors import (ArityError, AuthenticationError, DaemonShutdownError,
                      RequestTooLargeError, ServerBusyError, ServingError,
                      ServingProtocolError, UnknownRelationError,
                      WALCorruptionError)
from .admission import (UNAUTHENTICATED_OPS, AdmissionPolicy, Authenticator,
                        load_token)
from .compaction import (CompactionPolicy, address_path, latest_snapshot,
                         list_segments, migrate_legacy_wal, prune_snapshots,
                         run_checkpoint, segment_path, snapshot_path)
from .wal import (OP_ADD, OP_RETRACT, AppendedFrame, WALRecord, WriteAheadLog,
                  decode_facts, maybe_crash, maybe_stall, scan_wal)

PathLike = Union[str, Path]
PROTOCOL_VERSION = 1


def _summarize(updates: List[UpdateResult], version: int) -> Dict[str, Any]:
    """A wire-friendly summary of the update(s) one record applied."""
    return {
        "applied": sum(len(update.applied) for update in updates),
        "strategies": sorted({update.strategy for update in updates}),
        "steps": sum(update.steps for update in updates),
        "version": version,
    }


def _check_arity(materialized: MaterializedProgram, predicate: str,
                 row: Tuple) -> None:
    """Reject a row of the wrong width before it reaches the WAL."""
    instance = materialized.instance if \
        materialized.instance.has_relation(predicate) else materialized.edb
    expected = instance.relation(predicate).schema.arity
    if len(row) != expected:
        raise ArityError(
            f"relation {predicate!r} has arity {expected}, got a row of "
            f"width {len(row)}")


# ---------------------------------------------------------------------------
# Backends
# ---------------------------------------------------------------------------


class _MaterializedBackend:
    """The serving surface both backends derive from their materialized
    program (``self.materialized`` is supplied by the subclass)."""

    @property
    def versions(self):
        return self.materialized.versions

    @property
    def version(self) -> int:
        return self.materialized.version

    @property
    def snapshot_meta(self) -> Dict[str, Any]:
        return self.materialized.snapshot_meta

    def knows(self, predicate: str) -> bool:
        return self.materialized.instance.has_relation(predicate) or \
            self.materialized.edb.has_relation(predicate)

    def check_arity(self, predicate: str, row: Tuple) -> None:
        _check_arity(self.materialized, predicate, row)


class ProgramBackend(_MaterializedBackend):
    """Serve a plain :class:`~repro.engine.session.MaterializedProgram`."""

    kind = "program"

    def __init__(self, program=None, engine: Optional[str] = None):
        self.program = program
        self.engine = engine
        self.materialized: Optional[MaterializedProgram] = None

    # -- lifecycle -----------------------------------------------------------

    def bootstrap(self) -> None:
        """Materialize from the configured program (virgin data dir)."""
        if self.program is None:
            raise ServingError(
                "the data directory holds no snapshot and no program was "
                "supplied to bootstrap from")
        self.materialized = MaterializedProgram(self.program,
                                                engine=self.engine)
        # Create the query session eagerly (single-threaded here): the
        # first concurrent readers must never race the lazy initializer.
        self.materialized.queries()

    def restore(self, path: PathLike) -> None:
        """Restore from a snapshot (rules verified when a program is set).

        ``check_data=False``: the served EDB legitimately diverges from the
        configured program's pristine data through absorbed updates — the
        snapshot is the authority for the data, the program hash still
        rejects a changed rule set.
        """
        self.materialized = load_program(path, program=self.program,
                                         engine=self.engine,
                                         check_data=False)
        # Adopt the snapshot's maintained answer counts *before* any WAL
        # record is replayed, so replay maintains them by delta and the
        # restored daemon answers without re-joining anything.
        self.materialized.queries()

    def save(self, path: PathLike, meta: Dict[str, Any]) -> Path:
        return self.materialized.save(path, meta=meta)

    # -- serving surface -----------------------------------------------------

    @property
    def session(self):
        return self.materialized.queries()

    def apply(self, record: WALRecord) -> Dict[str, Any]:
        if record.op == OP_ADD:
            update = self.materialized.add_facts(record.facts)
        else:
            update = self.materialized.retract_facts(record.facts)
        return _summarize([update], self.version)

    def apply_many(self, records: List[WALRecord]) -> Dict[str, Any]:
        """Apply a contiguous same-op run of records as one session update
        (one chase delta, one MVCC publish) — the apply half of group
        commit.  A failure may leave partial in-memory state; the daemon
        rebuilds from disk and retries record-at-a-time."""
        facts = [fact for record in records for fact in record.facts]
        if records[0].op == OP_ADD:
            update = self.materialized.add_facts(facts)
        else:
            update = self.materialized.retract_facts(facts)
        return _summarize([update], self.version)

    def stats(self) -> Dict[str, Any]:
        return {"program": self.materialized.stats.as_dict(),
                "session": self.session.stats.as_dict()}


class QualityBackend(_MaterializedBackend):
    """Serve a :class:`~repro.quality.session.QualitySession` (context +
    instance under assessment), adding the quality operations."""

    kind = "quality"

    def __init__(self, context, instance=None, engine: Optional[str] = None):
        self.context = context
        self.instance = instance
        self.engine = engine
        self.quality_session = None

    # -- lifecycle -----------------------------------------------------------

    def bootstrap(self) -> None:
        if self.instance is None:
            raise ServingError(
                "the data directory holds no snapshot and no instance under "
                "assessment was supplied to bootstrap from")
        self.quality_session = self.context.session(self.instance,
                                                    engine=self.engine)

    def restore(self, path: PathLike) -> None:
        from ..quality.session import QualitySession
        self.quality_session = QualitySession.load(self.context, path,
                                                   engine=self.engine)

    def save(self, path: PathLike, meta: Dict[str, Any]) -> Path:
        return self.quality_session.save(path, meta=meta)

    # -- serving surface -----------------------------------------------------

    @property
    def materialized(self) -> MaterializedProgram:
        return self.quality_session.materialized

    @property
    def session(self):
        return self.quality_session.query_session

    def apply(self, record: WALRecord) -> Dict[str, Any]:
        # Records go through the quality session (not the bare program) so
        # the instance under assessment and the dirty tracking stay in
        # sync.  Facts are grouped per relation in first-occurrence order —
        # the same deterministic order at live-apply and replay time.
        groups: Dict[str, List[Tuple]] = {}
        for predicate, row in record.facts:
            groups.setdefault(predicate, []).append(row)
        apply_one = self.quality_session.add_facts if record.op == OP_ADD \
            else self.quality_session.retract_facts
        updates = [apply_one(predicate, rows)
                   for predicate, rows in groups.items()]
        return _summarize(updates, self.version)

    def apply_many(self, records: List[WALRecord]) -> Dict[str, Any]:
        """Apply a contiguous same-op run of records in one pass: facts
        from the whole run are grouped per relation (first-occurrence
        order, as in :meth:`apply`) so each touched relation publishes
        once.  A failure may leave partial in-memory state; the daemon
        rebuilds from disk and retries record-at-a-time."""
        groups: Dict[str, List[Tuple]] = {}
        for record in records:
            for predicate, row in record.facts:
                groups.setdefault(predicate, []).append(row)
        apply_one = self.quality_session.add_facts if records[0].op == OP_ADD \
            else self.quality_session.retract_facts
        updates = [apply_one(predicate, rows)
                   for predicate, rows in groups.items()]
        return _summarize(updates, self.version)

    def quality_answers(self, query: str):
        return self.quality_session.quality_answers(query)

    def quality_version(self, relation: str):
        return self.quality_session.quality_version(relation).sorted_rows()

    def assess(self) -> Dict[str, Any]:
        assessment = self.quality_session.assess()
        return {"relations": assessment.as_rows(),
                "quality_ratio": assessment.quality_ratio,
                "departure": assessment.departure,
                "text": str(assessment)}

    def stats(self) -> Dict[str, Any]:
        return {"program": self.materialized.stats.as_dict(),
                "session": self.session.stats.as_dict(),
                "quality": self.quality_session.stats.as_dict()}


# ---------------------------------------------------------------------------
# Connection state (per-client pins)
# ---------------------------------------------------------------------------


class ConnectionState:
    """Per-connection serving state: the pins a client holds (released
    when the connection closes), its auth-handshake progress, and how
    many of its writes are currently queued or in flight."""

    def __init__(self, store):
        self._store = store
        self._pins: Dict[int, List[Any]] = {}
        self.closing = False
        #: set once the shared-secret handshake succeeds (or when the
        #: daemon requires no auth — the gate checks the requirement)
        self.authenticated = False
        #: the outstanding single-use auth nonce (``None`` = none issued,
        #: or the last one was consumed by an ``auth`` attempt)
        self.auth_nonce: Optional[str] = None
        #: writes from this connection sitting in (or moving through)
        #: the commit queue; bounded by the admission policy
        self.inflight_writes = 0

    def pin(self, version: Optional[int] = None) -> int:
        pinned = self._store.pin(version)
        self._pins.setdefault(pinned.version, []).append(pinned)
        return pinned.version

    def unpin(self, version: int) -> None:
        held = self._pins.get(version)
        if not held:
            raise ServingProtocolError(
                f"this connection holds no pin on version {version}")
        self._store.unpin(held.pop())
        if not held:
            del self._pins[version]

    def release_all(self) -> None:
        for held in self._pins.values():
            for pinned in held:
                try:
                    self._store.unpin(pinned)
                except Exception:  # pragma: no cover - store already gone
                    pass
        self._pins.clear()


def _error_response(request_id: Any, exc: BaseException) -> Dict[str, Any]:
    """The wire shape of a refused/failed request.  Typed refusals carry
    their class name in ``error_type`` (the client re-raises them as the
    same class) and busy refusals additionally carry ``retry_after``."""
    response = {"ok": False, "id": request_id, "error": str(exc),
                "error_type": type(exc).__name__}
    retry_after = getattr(exc, "retry_after", None)
    if retry_after is not None:
        response["retry_after"] = retry_after
    return response


def check_authenticated(daemon, op: str, connection: ConnectionState) -> None:
    """Refuse ``op`` on an unauthenticated connection (both daemons).

    Liveness (``ping``) and the handshake itself stay reachable; every
    other operation — reads, writes, pins, stats, quality — is refused
    with a typed :class:`~repro.errors.AuthenticationError` and counted.
    A daemon with no token configured requires nothing."""
    if not daemon.authenticator.required or connection.authenticated:
        return
    if op in UNAUTHENTICATED_OPS:
        return
    daemon.serving_stats.auth_failures += 1
    raise AuthenticationError(
        f"request {op!r} refused: this daemon requires authentication "
        "(complete the auth_challenge + auth handshake first)")


def handle_auth_op(daemon, op: str, request: Dict[str, Any],
                   connection: ConnectionState) -> Optional[Dict[str, Any]]:
    """Serve the two handshake operations; ``None`` for any other op.

    ``auth_challenge`` issues a fresh single-use nonce (replacing any
    outstanding one); ``auth`` verifies the client's HMAC over it in
    constant time.  The nonce is consumed by the attempt whatever the
    outcome, so a captured or replayed MAC never verifies twice."""
    if op == "auth_challenge":
        if not daemon.authenticator.required:
            return {"required": False, "nonce": None}
        connection.auth_nonce = daemon.authenticator.challenge()
        return {"required": True, "nonce": connection.auth_nonce}
    if op == "auth":
        if not daemon.authenticator.required:
            connection.authenticated = True
            return {"authenticated": True, "required": False}
        nonce, connection.auth_nonce = connection.auth_nonce, None
        if daemon.authenticator.verify(nonce, request.get("mac")):
            connection.authenticated = True
            return {"authenticated": True, "required": True}
        daemon.serving_stats.auth_failures += 1
        raise AuthenticationError(
            "authentication failed: missing, wrong or replayed credential; "
            "request a fresh auth_challenge and answer it with "
            "HMAC-SHA256(token, nonce)")
    return None


class _CommitEntry:
    """One writer's update waiting in (or moving through) the commit queue."""

    __slots__ = ("op", "facts", "event", "result", "error")

    def __init__(self, op: str, facts: List[Fact]):
        self.op = op
        self.facts = facts
        self.event = threading.Event()
        self.result: Optional[Dict[str, Any]] = None
        self.error: Optional[BaseException] = None


# ---------------------------------------------------------------------------
# The daemon
# ---------------------------------------------------------------------------


class ServingDaemon:
    """Recover a backend from its data directory and serve it."""

    def __init__(self, backend, data_dir: PathLike, sync: bool = True,
                 policy: Optional[CompactionPolicy] = None,
                 commit_delay: float = 0.01,
                 admission: Optional[AdmissionPolicy] = None,
                 auth_token: Optional[Union[str, bytes]] = None):
        self.backend = backend
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.sync = sync
        self.policy = policy or CompactionPolicy()
        #: upper bound on how long the committer waits for followers to
        #: fill a batch once concurrency has been observed (0 disables it)
        self.commit_delay = commit_delay
        #: per-request limits enforced before validation and logging
        self.admission = admission or AdmissionPolicy()
        #: the shared-secret gate (``auth_token=None`` leaves it open)
        self.authenticator = Authenticator(auth_token)
        #: serializes writers and checkpoints (readers never take it)
        self._lock = threading.RLock()
        self._wal: Optional[WriteAheadLog] = None
        self.last_lsn = 0
        self.records_since_checkpoint = 0
        self.last_checkpoint_error: Optional[str] = None
        #: durability/group-commit counters (surfaced by the stats op)
        self.serving_stats = ServingStats()
        #: the report of the last :meth:`recover` run
        self.recovery: Optional[Dict[str, Any]] = None
        self._server: Optional["_LineServer"] = None
        self._thread: Optional[threading.Thread] = None
        self._default_connection: Optional[ConnectionState] = None
        #: live socket connections (their pins are released on stop())
        self._connections: Dict[int, ConnectionState] = {}
        self._connections_lock = threading.Lock()
        # Group commit: writers enqueue under _commit_mutex and block on
        # their entry's event; a dedicated committer thread (started by
        # recover()) drains the queue in batches.  The committer must NOT
        # be a writer's own handler thread — a writer that led commits
        # inline could not answer its own client until the queue ran dry,
        # pinning that client out of the pool under sustained load.
        self._commit_mutex = threading.Lock()
        self._commit_ready = threading.Condition(self._commit_mutex)
        self._commit_queue: List[_CommitEntry] = []
        self._commit_thread: Optional[threading.Thread] = None
        self._commit_stop = False
        #: size of the last drained batch — the concurrency hint that
        #: decides whether the committer waits for followers at all
        self._last_batch_size = 1
        #: deepest the commit queue has been (surfaced by the stats op)
        self.queue_peak = 0
        #: wall seconds the last commit batch took end to end — the basis
        #: of the retry-after hint a busy refusal carries
        self._last_commit_seconds = 0.02

    # -- recovery ------------------------------------------------------------

    def recover(self) -> Dict[str, Any]:
        """Restore snapshot ⊕ WAL (or bootstrap a virgin directory).

        Returns a report: where the state came from, how many records were
        replayed, and whether (and why) a torn WAL tail was truncated.
        """
        with self._lock:
            found = latest_snapshot(self.data_dir)
            if found is None:
                if list_segments(self.data_dir) or \
                        (self.data_dir / "wal.log").exists():
                    raise ServingError(
                        f"{self.data_dir} has write-ahead log segments but "
                        "no snapshot to replay them onto; restore a "
                        "snapshot into the directory (or move the logs "
                        "away) instead of silently discarding their "
                        "updates")
                self.backend.bootstrap()
                self.last_lsn = 0
                self.records_since_checkpoint = 0
                # The initial checkpoint: a crash right after boot recovers
                # to this same state instead of re-chasing.
                self.backend.save(
                    snapshot_path(self.data_dir, 0),
                    {"wal": {"lsn": 0,
                             "segment": segment_path(self.data_dir, 0).name}})
                self._wal = WriteAheadLog.create(
                    segment_path(self.data_dir, 0), base_lsn=0,
                    sync=self.sync)
                report: Dict[str, Any] = {
                    "bootstrapped": True, "snapshot": None, "base_lsn": 0,
                    "replayed_records": 0, "torn_tail": None,
                    "truncated_bytes": 0,
                }
            else:
                report = self._restore_from_disk()
            self._default_connection = ConnectionState(self.backend.versions)
            self.recovery = report
            self._start_committer()
            return report

    def _start_committer(self) -> None:
        """Start (or restart, after stop()) the group-commit thread."""
        with self._commit_ready:
            if self._commit_thread is not None:
                return
            self._commit_stop = False
            self._commit_thread = threading.Thread(
                target=self._commit_loop, name="repro-group-commit",
                daemon=True)
            self._commit_thread.start()

    def _restore_from_disk(self) -> Dict[str, Any]:
        """(Re)build the backend from the durable state on disk.

        Restores the newest snapshot, replays the WAL suffix past its cut,
        and (re)opens the log for appending.  Called under the lock —
        by :meth:`recover`, and by :meth:`apply_write` after a failed
        apply to discard whatever the aborted update mutated in memory.
        """
        lsn, path = latest_snapshot(self.data_dir)
        self.backend.restore(path)
        cut = wal_position(self.backend.snapshot_meta, default=lsn)
        report: Dict[str, Any] = {
            "bootstrapped": False, "snapshot": path.name, "base_lsn": cut,
            "replayed_records": 0, "torn_tail": None, "truncated_bytes": 0,
        }
        migrate_legacy_wal(self.data_dir)
        segments = list_segments(self.data_dir)
        if not segments:
            self._wal = WriteAheadLog.create(
                segment_path(self.data_dir, cut), base_lsn=cut,
                sync=self.sync)
            self.last_lsn = cut
            self.records_since_checkpoint = 0
            return report
        # Replay the segment chain past the snapshot's cut.  Segments whose
        # *successor* starts at or before the cut hold only folded-in
        # records and are skipped unread; the survivors must chain
        # contiguously (each base = predecessor's last record LSN) and only
        # the final segment may carry a torn tail — a tear anywhere else
        # means durable records after it were lost.
        applied = 0
        chained: Optional[int] = None
        for index, (base, seg_path) in enumerate(segments):
            is_last = index == len(segments) - 1
            if not is_last and segments[index + 1][0] <= cut:
                continue  # fully folded into the snapshot
            if is_last:
                recovered = WriteAheadLog.recover(seg_path, sync=self.sync)
                records = recovered.records
                report["torn_tail"] = recovered.torn_reason
                report["truncated_bytes"] = recovered.truncated_bytes
                self._wal = recovered.wal
            else:
                scan = scan_wal(seg_path)
                if scan.torn_reason is not None:
                    raise WALCorruptionError(
                        f"write-ahead log segment {seg_path.name} has a "
                        f"damaged tail ({scan.torn_reason}) but newer "
                        "segments exist; its lost records cannot be "
                        "skipped — restore a newer snapshot instead of "
                        "replaying this chain")
                records = scan.records
            if chained is None:
                if base > cut:
                    raise WALCorruptionError(
                        f"write-ahead log segment {seg_path.name} starts "
                        f"at LSN {base} but the newest snapshot stops at "
                        f"LSN {cut}; the records in between are gone — "
                        "restore the missing newer snapshot instead of "
                        "replaying this chain")
            elif base != chained:
                raise WALCorruptionError(
                    f"write-ahead log segment {seg_path.name} starts at "
                    f"LSN {base} but the previous segment ends at LSN "
                    f"{chained}; the records in between are gone — "
                    "restore from a newer snapshot instead of replaying "
                    "this chain")
            chained = records[-1].lsn if records else base
            for record in records:
                if record.lsn <= cut:
                    continue  # already folded into the snapshot
                self.backend.apply(record)
                applied += 1
        report["replayed_records"] = applied
        self.last_lsn = max(cut, self._wal.last_lsn)
        self.records_since_checkpoint = applied
        return report

    # -- writes --------------------------------------------------------------

    def apply_write(self, op: str, facts: List[Fact],
                    connection: Optional[ConnectionState] = None
                    ) -> Dict[str, Any]:
        """Log, apply and (maybe) checkpoint one update batch — through
        the **group-commit** queue, behind admission control.

        Admission runs first: a request carrying more facts than the
        policy admits is refused typed
        (:class:`~repro.errors.RequestTooLargeError`), a connection with
        too many writes already in flight or a full commit queue gets a
        typed :class:`~repro.errors.ServerBusyError` carrying a
        retry-after hint — nothing inadmissible is ever validated,
        logged or applied, and reads are never affected.

        Each writer validates its own request, enqueues a commit entry and
        blocks on the entry's event.  A dedicated committer thread drains
        the queue in batches: it appends every queued frame with **one**
        WAL flush + fsync
        (:meth:`~repro.serving.wal.WriteAheadLog.append_batch`), applies
        the records in LSN order — folding contiguous same-op runs into
        one session update — and only then wakes each writer.  An
        acknowledged update is therefore always durable, exactly as with
        record-at-a-time commits, but N concurrent writers share one fsync
        instead of paying N.

        If an apply fails after validation (e.g. a hard EGD conflict the
        chase only discovers mid-run), the failing record — and every
        unapplied record after it, none of them acknowledged — is rolled
        back out of the WAL, the in-memory state is rebuilt from disk, and
        the survivors are retried record-at-a-time to isolate the poisoned
        record: every record that stays in the log replays cleanly, so one
        poisoned request can never make the data directory unrecoverable.
        """
        facts = list(facts)
        if self._wal is None:
            raise ServingError("the daemon has not recovered yet; "
                               "call recover() before serving writes")
        # Admission runs before validation: an inadmissible request is
        # refused without the daemon spending per-fact work on it.
        try:
            self.admission.check_facts(len(facts))
        except ServingError:
            self.serving_stats.oversized_rejections += 1
            raise
        if op == OP_ADD:
            # Pre-validate so a record that cannot apply is never
            # logged (replay must succeed on everything in the WAL).
            for predicate, row in facts:
                if not self.backend.knows(predicate):
                    raise UnknownRelationError(
                        f"unknown relation {predicate!r}; the serving "
                        "vocabulary is fixed by the ontology")
                self.backend.check_arity(predicate, row)
        entry = _CommitEntry(op, facts)
        with self._commit_ready:
            if self._commit_thread is None or self._commit_stop:
                raise DaemonShutdownError(
                    "the daemon is stopped; writes are refused until the "
                    "next recover()")
            inflight_cap = self.admission.max_inflight_per_connection
            if connection is not None and inflight_cap and \
                    connection.inflight_writes >= inflight_cap:
                self.serving_stats.inflight_rejections += 1
                raise ServerBusyError(
                    f"this connection already has {connection.inflight_writes} "
                    f"writes in flight (cap {inflight_cap}); wait for them "
                    "before sending more", retry_after=self._retry_after())
            cap = self.admission.queue_cap
            if cap and len(self._commit_queue) >= cap:
                # Back-pressure: the queue is full, so shed this writer
                # with a typed refusal instead of letting the queue (and
                # every writer's latency) grow without bound.  Nothing
                # was logged — retrying after the hint is always safe.
                self.serving_stats.busy_rejections += 1
                raise ServerBusyError(
                    f"the commit queue is full ({cap} writes waiting); "
                    "back off and retry", retry_after=self._retry_after())
            self._commit_queue.append(entry)
            self.queue_peak = max(self.queue_peak, len(self._commit_queue))
            if connection is not None:
                connection.inflight_writes += 1
            self._commit_ready.notify()
        try:
            entry.event.wait()
        finally:
            if connection is not None:
                with self._commit_ready:
                    connection.inflight_writes -= 1
        if entry.error is not None:
            raise entry.error
        return entry.result

    def _retry_after(self) -> float:
        """A busy refusal's backoff hint: roughly how long draining the
        current queue should take, from the last batch's measured commit
        time — an estimate for clients to use as a floor, not a promise."""
        backlog = max(1, len(self._commit_queue))
        batch = max(1, self._last_batch_size)
        estimate = self._last_commit_seconds * (backlog / batch)
        return round(min(2.0, max(0.01, estimate)), 4)

    def _commit_loop(self) -> None:
        """The committer thread: drain the queue in batches, forever.

        Entries that join the queue while a batch is committing form the
        next batch, so the effective batch size adapts to the arrival
        rate.  When the previous batch proved writers are arriving
        concurrently, the committer additionally waits for the queue to
        refill before draining (PostgreSQL's commit_delay /
        commit_siblings idea): acked writers need a moment to process
        their responses and send the next request, and draining too
        eagerly would degrade the batch size on a busy box.  A solo
        writer never pays the delay — its batches are size 1, so the
        hint stays 1."""
        while True:
            with self._commit_ready:
                while not self._commit_queue and not self._commit_stop:
                    self._commit_ready.wait()
                if self._commit_stop:
                    return  # stop() fails whatever is still queued
            self._wait_for_followers()
            with self._commit_ready:
                batch, self._commit_queue = self._commit_queue, []
            if not batch:
                continue
            self._last_batch_size = len(batch)
            started = time.monotonic()
            try:
                with self._lock:
                    self._commit_batch(batch)
            except BaseException as exc:  # noqa: BLE001 - never strand a waiter
                for entry in batch:
                    if entry.result is None and entry.error is None:
                        entry.error = exc
            finally:
                # Feeds the retry-after hint busy refusals carry.
                self._last_commit_seconds = \
                    max(0.001, time.monotonic() - started)
                for entry in batch:
                    entry.event.set()

    def _wait_for_followers(self) -> None:
        """Give concurrent writers a moment to join the next batch.

        Only engages once a previous batch actually carried more than one
        entry (the concurrency hint).  Rather than guessing how many
        writers exist, the wait watches the queue *grow*: as long as new
        entries keep arriving within a short quiet window the batch is
        still filling; once arrivals stop — every live writer is in — it
        drains immediately.  :attr:`commit_delay` bounds the whole wait,
        so a straggler can only stretch a batch, never stall it."""
        if self.commit_delay <= 0 or self._last_batch_size < 2:
            return
        quiet_window = 0.001  # no-arrival window that ends the wait
        deadline = time.monotonic() + self.commit_delay
        seen = len(self._commit_queue)
        last_arrival = time.monotonic()
        while True:
            time.sleep(0.0002)
            now = time.monotonic()
            queued = len(self._commit_queue)
            if queued > seen:
                seen, last_arrival = queued, now
            elif now - last_arrival >= quiet_window:
                return
            if now >= deadline:
                return

    def _commit_batch(self, batch: List[_CommitEntry]) -> None:
        """Make one batch durable, apply it in LSN order, maybe checkpoint.

        Called under ``_lock``.  Fills each entry's ``result`` or
        ``error``; the caller wakes the writers."""
        # Overload injection: a stalled committer is how the back-pressure
        # suite fills a small queue deterministically (reads must keep
        # answering throughout — they never touch this path).
        maybe_stall("group-commit-stall")
        queue = list(batch)
        batched = True
        while queue:
            if self._wal is None:
                error = DaemonShutdownError("the daemon was stopped while "
                                            "the write was queued")
                for entry in queue:
                    entry.error = error
                return
            try:
                appended = self._wal.append_batch(
                    [(entry.op, entry.facts) for entry in queue])
            except Exception as exc:  # noqa: BLE001 - fail the whole batch
                for entry in queue:
                    entry.error = exc
                return
            self.serving_stats.commit_batches += 1
            self.serving_stats.wal_records += len(queue)
            if self.sync:
                self.serving_stats.wal_fsyncs += 1
            if len(queue) > 1:
                self.serving_stats.commit_grouped_records += len(queue)
            # Durable but not yet applied or acknowledged: a crash here
            # must recover every record of the batch without any writer
            # having been acked (the group-commit recovery tests drive it).
            maybe_crash("group-commit-durable")
            retry_from = self._apply_entries(queue, appended, batched)
            if retry_from is None:
                break
            # A batched apply failed somewhere in a same-op run: the run
            # (and everything after it) has been rolled out of the WAL and
            # memory rebuilt from disk.  Retry the survivors one record at
            # a time so only the genuinely poisoned record fails.
            queue = queue[retry_from:]
            batched = False
        applied = [entry for entry in batch if entry.result is not None]
        if applied and self.policy.due(self.records_since_checkpoint,
                                       self._wal.size_bytes):
            maybe_crash("pre-auto-checkpoint")
            summary = applied[-1].result
            try:
                self.checkpoint()
                summary["checkpointed"] = True
            except Exception as exc:  # noqa: BLE001 - write must win
                # The writes are durable and applied; a failed compaction
                # (snapshot error, disk full) must not fail them.  The
                # previous snapshot and the live segment are intact;
                # surface the problem and retry at the next trigger.
                self.last_checkpoint_error = str(exc)
                summary["checkpoint_error"] = str(exc)

    def _apply_entries(self, queue: List[_CommitEntry],
                       appended: List[AppendedFrame],
                       batched: bool) -> Optional[int]:
        """Apply a durable batch in LSN order; ``None`` on full success.

        With ``batched`` set, contiguous same-op runs are applied as one
        session update (one MVCC publish per run).  On an apply failure
        the failing run and the whole unapplied suffix are rolled back out
        of the WAL, the in-memory state is rebuilt from the durable
        prefix, and the index to retry from is returned (the failing
        record's own index when it was applied alone — its writer already
        holds the error)."""
        index = 0
        while index < len(queue):
            run = 1
            if batched:
                while index + run < len(queue) and \
                        queue[index + run].op == queue[index].op:
                    run += 1
            entries = queue[index:index + run]
            frames = appended[index:index + run]
            records = [WALRecord(lsn=frame.lsn, op=entry.op,
                                 facts=tuple(entry.facts))
                       for frame, entry in zip(frames, entries)]
            try:
                if run == 1:
                    summary = self.backend.apply(records[0])
                else:
                    summary = self.backend.apply_many(records)
                    self.serving_stats.apply_batches += 1
            except BaseException as exc:  # noqa: BLE001 - isolate + rebuild
                # The aborted apply may have left the in-memory state
                # partially mutated (an EGD conflict aborts the chase
                # mid-run; a multi-relation quality batch may have applied
                # its first groups).  Roll the unapplied suffix out of the
                # log — none of it was acknowledged — and rebuild from the
                # durable state, so live answers, later checkpoints and
                # recovery all agree the failed update never happened.
                self._wal.rollback_to(frames[0].lsn - 1, frames[0].offset)
                self._wal.close()
                self._restore_from_disk()
                self._default_connection = \
                    ConnectionState(self.backend.versions)
                if run == 1:
                    entries[0].error = exc
                    return index + 1
                self.serving_stats.degraded_retries += 1
                return index
            for frame, entry in zip(frames, entries):
                result = dict(summary)
                result["lsn"] = frame.lsn
                result["checkpointed"] = False
                entry.result = result
            self.last_lsn = frames[-1].lsn
            self.records_since_checkpoint += run
            index += run
        return None

    def checkpoint(self) -> Dict[str, Any]:
        """Take a snapshot at the current cut and rotate the WAL."""
        with self._lock:
            if self._wal is None:
                raise ServingError("the daemon has not recovered yet")
            maybe_stall("checkpoint-stall")
            existing = latest_snapshot(self.data_dir)
            if existing is not None and existing[0] == self.last_lsn:
                prune_snapshots(self.data_dir, self.policy.keep_snapshots)
                return {"checkpointed": False, "snapshot_lsn": self.last_lsn,
                        "reason": "no records since the last checkpoint"}
            self._wal = run_checkpoint(
                self.data_dir, self.backend.save, self._wal, self.last_lsn,
                keep_snapshots=self.policy.keep_snapshots, sync=self.sync)
            self.records_since_checkpoint = 0
            self.last_checkpoint_error = None
            return {"checkpointed": True, "snapshot_lsn": self.last_lsn}

    # -- request dispatch ----------------------------------------------------

    def handle(self, request: Dict[str, Any],
               connection: Optional[ConnectionState] = None) -> Dict[str, Any]:
        """Serve one protocol request; never raises (errors become
        ``{"ok": false}`` responses so a bad request cannot kill the
        daemon)."""
        request_id = request.get("id") if isinstance(request, dict) else None
        try:
            if not isinstance(request, dict) or "op" not in request:
                raise ServingProtocolError(
                    'requests are JSON objects with an "op" field')
            result = self._dispatch(request,
                                    connection or self._default_connection)
            return {"ok": True, "id": request_id, "result": result}
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            return _error_response(request_id, exc)

    def _dispatch(self, request: Dict[str, Any],
                  connection: ConnectionState) -> Dict[str, Any]:
        op = request["op"]
        backend = self.backend
        check_authenticated(self, op, connection)
        handshake = handle_auth_op(self, op, request, connection)
        if handshake is not None:
            return handshake
        if op == "ping":
            return {"pong": True, "kind": backend.kind,
                    "protocol_version": PROTOCOL_VERSION,
                    "auth_required": self.authenticator.required,
                    "version": backend.version, "lsn": self.last_lsn}
        if op == "answers":
            with backend.session.read(request.get("version")) as txn:
                rows = txn.answers(request["query"],
                                   allow_nulls=bool(request.get("allow_nulls")))
                return {"rows": [encode_row(row) for row in rows],
                        "version": txn.version}
        if op == "holds":
            with backend.session.read(request.get("version")) as txn:
                return {"holds": txn.holds(request["query"]),
                        "version": txn.version}
        if op in ("add_facts", "retract_facts"):
            facts = decode_facts(request.get("facts") or [])
            return self.apply_write(
                OP_ADD if op == "add_facts" else OP_RETRACT, facts,
                connection=connection)
        if op == "pin":
            return {"version": connection.pin(request.get("version"))}
        if op == "unpin":
            connection.unpin(int(request["version"]))
            return {"unpinned": int(request["version"])}
        if op == "checkpoint":
            return self.checkpoint()
        if op == "stats":
            stats = backend.stats()
            with self._lock:
                stats["serving"] = {
                    "lsn": self.last_lsn,
                    "wal_base_lsn": self._wal.base_lsn if self._wal else None,
                    "wal_bytes": self._wal.size_bytes if self._wal else 0,
                    "wal_segments": len(list_segments(self.data_dir)),
                    "records_since_checkpoint": self.records_since_checkpoint,
                    "last_checkpoint_error": self.last_checkpoint_error,
                    "live_versions": backend.versions.live_versions(),
                    "group_commit": self.serving_stats.as_dict(),
                    "admission": {
                        "queue_depth": len(self._commit_queue),
                        "queue_peak": self.queue_peak,
                        "queue_cap": self.admission.queue_cap,
                        "max_request_bytes":
                            self.admission.max_request_bytes,
                        "max_facts_per_write":
                            self.admission.max_facts_per_write,
                        "max_inflight_per_connection":
                            self.admission.max_inflight_per_connection,
                        "auth_required": self.authenticator.required,
                    },
                }
            return stats
        if op == "recovery":
            return dict(self.recovery or {})
        if op == "quality_answers":
            self._require_quality(op)
            # Quality-layer reads serialize with writers: unlike the MVCC
            # answers/holds path, quality versions, assessments and the
            # instance under assessment are unversioned state that
            # apply_write mutates in place.
            with self._lock:
                rows = backend.quality_answers(request["query"])
            return {"rows": [encode_row(row) for row in rows]}
        if op == "quality_version":
            self._require_quality(op)
            with self._lock:
                rows = backend.quality_version(request["relation"])
            return {"rows": [encode_row(row) for row in rows]}
        if op == "assess":
            self._require_quality(op)
            with self._lock:
                return backend.assess()
        if op == "shutdown":
            connection.closing = True
            self._async_stop()
            return {"stopping": True}
        raise ServingProtocolError(f"unknown request op {op!r}")

    def _require_quality(self, op: str) -> None:
        if not hasattr(self.backend, "quality_answers"):
            raise ServingProtocolError(
                f"request {op!r} needs a quality backend, but this daemon "
                "serves a plain program (start it with --hospital or a "
                "QualityBackend)")

    # -- network lifecycle ---------------------------------------------------

    def start(self, host: str = "127.0.0.1", port: int = 0
              ) -> Tuple[str, int]:
        """Bind, start serving in a background thread, and advertise the
        address in ``<data_dir>/daemon.json`` (atomic write)."""
        if self._server is not None:
            raise ServingError("the daemon is already serving")
        self._server = _LineServer((host, port), self)
        bound_host, bound_port = self._server.server_address[:2]
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-serving-daemon",
                                        daemon=True)
        self._thread.start()
        address = address_path(self.data_dir)
        temp = address.with_name(address.name + ".tmp")
        temp.write_text(json.dumps({
            "host": bound_host, "port": bound_port, "pid": os.getpid(),
            "kind": self.backend.kind, "role": "primary",
            "protocol_version": PROTOCOL_VERSION,
        }), encoding="utf-8")
        os.replace(temp, address)
        return bound_host, bound_port

    def wait(self) -> None:
        """Block until the serving thread exits (stop() from elsewhere)."""
        if self._thread is not None:
            while self._thread.is_alive():
                self._thread.join(timeout=0.5)

    def _async_stop(self) -> None:
        threading.Thread(target=self.stop, name="repro-serving-stop",
                         daemon=True).start()

    def _register_connection(self, connection: ConnectionState) -> None:
        with self._connections_lock:
            self._connections[id(connection)] = connection

    def _unregister_connection(self, connection: ConnectionState) -> None:
        with self._connections_lock:
            self._connections.pop(id(connection), None)

    def stop(self) -> None:
        """Stop serving, release every pin still held on the daemon's
        behalf, and close the WAL handle — exactly once (idempotent).

        Runs the same way whether called directly, from the ``shutdown``
        request, or from a ``finally`` after ``serve_forever`` exits via
        an exception: live connections' pins are released even when their
        handler threads never got to run their own cleanup, so no
        superseded version can stay pinned (and uncollectable) past
        stop()."""
        with self._commit_ready:
            self._commit_stop = True
            self._commit_ready.notify_all()
            committer, self._commit_thread = self._commit_thread, None
        if committer is not None and committer is not \
                threading.current_thread():
            committer.join(timeout=30.0)
        with self._commit_ready:
            stranded, self._commit_queue = self._commit_queue, []
        if stranded:
            # Typed, so a blocked writer can tell "the daemon went away"
            # from a failed apply; every queued waiter is woken — no
            # client thread is ever stranded on an event nobody sets.
            error = DaemonShutdownError("the daemon was stopped while the "
                                        "write was queued")
            for entry in stranded:
                entry.error = error
                entry.event.set()
        server, self._server = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        try:
            address_path(self.data_dir).unlink()
        except OSError:
            pass
        with self._connections_lock:
            connections = list(self._connections.values())
            self._connections.clear()
        for connection in connections:
            connection.release_all()
        with self._lock:
            if self._default_connection is not None:
                self._default_connection.release_all()
            wal, self._wal = self._wal, None
            if wal is not None:
                wal.close()

    def close(self) -> None:
        self.stop()

    def __enter__(self) -> "ServingDaemon":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ServingDaemon({self.backend.kind!r}, "
                f"data_dir={str(self.data_dir)!r}, lsn={self.last_lsn})")


# ---------------------------------------------------------------------------
# Socket plumbing
# ---------------------------------------------------------------------------


class _LineServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: Tuple[str, int], daemon: ServingDaemon):
        self.serving_daemon = daemon
        super().__init__(address, _LineHandler)


def _read_request_line(rfile, limit: int) -> Tuple[Optional[bytes], bool]:
    """One protocol line, reading at most ``limit`` bytes of it.

    Returns ``(line, oversized)``.  ``line is None`` means EOF (the
    client went away — a line cut short by EOF counts, since it can
    never complete).  An oversized line — longer than ``limit`` bytes
    including the newline — is **drained** in bounded chunks and
    reported as ``(None-content, True)``: the daemon never buffers more
    than ``limit`` bytes for one request, no matter what a poisoned
    client streams at it, and the connection stays usable afterwards."""
    line = rfile.readline(limit + 1) if limit else rfile.readline()
    if not line:
        return None, False
    if len(line) <= limit or not limit:
        if line.endswith(b"\n"):
            return line, False
        return None, False  # EOF mid-line: the request can never complete
    # Over the cap: throw away the rest of the line, chunk by chunk.
    while not line.endswith(b"\n"):
        line = rfile.readline(65536)
        if not line:
            break
    return b"", True


class _LineHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        daemon = self.server.serving_daemon
        connection = ConnectionState(daemon.backend.versions)
        daemon._register_connection(connection)
        try:
            while True:
                limit = daemon.admission.max_request_bytes
                raw, oversized = _read_request_line(self.rfile, limit)
                if oversized:
                    # Shed before parsing: one poisoned oversized request
                    # costs its own connection a refusal, never the
                    # daemon's memory or the other sessions' latency.
                    daemon.serving_stats.requests_shed += 1
                    response = _error_response(None, RequestTooLargeError(
                        f"request line exceeds this daemon's "
                        f"max_request_bytes={limit}; the line was "
                        "discarded unparsed"))
                elif raw is None:
                    break
                else:
                    line = raw.strip()
                    if not line:
                        continue
                    try:
                        request = json.loads(line.decode("utf-8"))
                    except (json.JSONDecodeError, UnicodeDecodeError):
                        response = {"ok": False, "id": None,
                                    "error": "request is not a JSON line",
                                    "error_type": "ServingProtocolError"}
                    else:
                        response = daemon.handle(request, connection)
                self.wfile.write(
                    (json.dumps(response, separators=(",", ":")) + "\n")
                    .encode("utf-8"))
                self.wfile.flush()
                if connection.closing:
                    break
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass
        finally:
            daemon._unregister_connection(connection)
            connection.release_all()


# ---------------------------------------------------------------------------
# Command line
# ---------------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.daemon",
        description="Serve a materialized Datalog± session over snapshots "
                    "and a write-ahead log.")
    parser.add_argument("--data-dir", required=True,
                        help="directory for snapshots + WAL (created if "
                             "missing); restart with the same directory to "
                             "recover")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="0 = pick a free port (advertised in "
                             "<data-dir>/daemon.json)")
    parser.add_argument("--program", metavar="FILE",
                        help="serve this Datalog± program text instead of "
                             "the default hospital quality session")
    parser.add_argument("--scenario", metavar="NAME",
                        help="serve a registered quality scenario "
                             "(hospital, sensornet, fincompliance); "
                             "mutually exclusive with --program")
    parser.add_argument("--engine", choices=("indexed", "naive", "columnar"))
    parser.add_argument("--no-sync", action="store_true",
                        help="skip fsync on WAL appends (faster; durable "
                             "against process crashes, not power loss)")
    parser.add_argument("--checkpoint-every", type=int, default=256,
                        metavar="N", help="checkpoint after N records")
    parser.add_argument("--max-wal-bytes", type=int, default=4 * 1024 * 1024)
    parser.add_argument("--keep-snapshots", type=int, default=2)
    parser.add_argument("--commit-delay", type=float, default=0.01,
                        metavar="SECONDS",
                        help="upper bound on how long the group committer "
                             "waits for concurrent writers to fill a batch "
                             "(0 disables the wait; solo writers never pay "
                             "it)")
    defaults = AdmissionPolicy()
    parser.add_argument("--max-request-bytes", type=int,
                        default=defaults.max_request_bytes, metavar="BYTES",
                        help="longest accepted protocol line; longer "
                             "requests are drained and refused unparsed "
                             "(0 disables the cap)")
    parser.add_argument("--max-facts-per-write", type=int,
                        default=defaults.max_facts_per_write, metavar="N",
                        help="most facts one add/retract request may carry "
                             "(0 disables the cap)")
    parser.add_argument("--max-inflight", type=int,
                        default=defaults.max_inflight_per_connection,
                        metavar="N",
                        help="most writes one connection may have queued at "
                             "once (0 disables the cap)")
    parser.add_argument("--queue-cap", type=int, default=defaults.queue_cap,
                        metavar="N",
                        help="commit-queue capacity; writers past it get a "
                             "typed busy refusal with a retry-after hint "
                             "instead of queueing (0 = unbounded)")
    parser.add_argument("--auth-token-file", metavar="FILE",
                        help="require the shared-secret auth handshake, "
                             "with the token read from FILE (whitespace "
                             "stripped); without it the daemon is open")
    parser.add_argument("--quiet", action="store_true")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.program and args.scenario:
        raise SystemExit("--program and --scenario are mutually exclusive")
    if args.program:
        text = Path(args.program).read_text(encoding="utf-8")
        backend = ProgramBackend(parse_program(text), engine=args.engine)
    elif args.scenario:
        from ..scenarios import build_scenario
        backend = build_scenario(args.scenario).serving_backend(
            engine=args.engine)
    else:
        from ..hospital import HospitalScenario
        scenario = HospitalScenario()
        backend = QualityBackend(scenario.context, scenario.measurements,
                                 engine=args.engine)
    policy = CompactionPolicy(checkpoint_every_records=args.checkpoint_every,
                              max_wal_bytes=args.max_wal_bytes,
                              keep_snapshots=args.keep_snapshots)
    admission = AdmissionPolicy(
        max_request_bytes=args.max_request_bytes,
        max_facts_per_write=args.max_facts_per_write,
        max_inflight_per_connection=args.max_inflight,
        queue_cap=args.queue_cap)
    token = load_token(args.auth_token_file) if args.auth_token_file else None
    daemon = ServingDaemon(backend, args.data_dir, sync=not args.no_sync,
                           policy=policy, commit_delay=args.commit_delay,
                           admission=admission, auth_token=token)
    report = daemon.recover()
    host, port = daemon.start(args.host, args.port)
    if not args.quiet:
        origin = "bootstrapped" if report["bootstrapped"] else \
            (f"recovered from {report['snapshot']} + "
             f"{report['replayed_records']} WAL record(s)")
        print(f"repro serving daemon ({backend.kind}) on {host}:{port} — "
              f"{origin}; data dir {daemon.data_dir}", flush=True)
        if report.get("torn_tail"):
            print(f"  truncated torn WAL tail: {report['torn_tail']} "
                  f"({report['truncated_bytes']} bytes)", flush=True)

    def _stop(_signum, _frame):  # pragma: no cover - signal path
        daemon._async_stop()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    try:
        daemon.wait()
    finally:
        daemon.stop()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
