"""Multi-process serving: snapshots + write-ahead log + daemon + client.

This package turns a materialized session into an operable service:

* :mod:`repro.serving.wal` — the append-only, checksummed write-ahead log
  (torn-tail detection, crash-point fault injection);
* :mod:`repro.serving.compaction` — checkpoint/compaction policies and the
  data-directory layout;
* :mod:`repro.serving.daemon` — the server process: recover (snapshot ⊕
  WAL replay), serve sessions over a line-JSON socket protocol, checkpoint
  inline (``python -m repro.serving.daemon`` to run one);
* :mod:`repro.serving.client` — a thin client mirroring the in-process
  session API.

The recovery invariant, proven by ``tests/test_serving_recovery.py``:
**snapshot ⊕ WAL replay ≡ live session** — after any crash, the recovered
state equals a clean replay of the durable WAL prefix.
"""

from .client import ClientRead, ServingClient, read_address
from .compaction import (CompactionPolicy, latest_snapshot, list_snapshots,
                         prune_snapshots, snapshot_path, wal_path)
from .wal import (WALRecord, WriteAheadLog, decode_facts, encode_facts,
                  scan_wal)

_DAEMON_EXPORTS = ("ProgramBackend", "QualityBackend", "ServingDaemon")


def __getattr__(name):
    # The daemon module is loaded lazily so ``python -m repro.serving.daemon``
    # does not import it twice (once as a package attribute, once as
    # ``__main__``), which would trip runpy's double-import warning.
    if name in _DAEMON_EXPORTS:
        from . import daemon
        return getattr(daemon, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ClientRead",
    "CompactionPolicy",
    "ProgramBackend",
    "QualityBackend",
    "ServingClient",
    "ServingDaemon",
    "WALRecord",
    "WriteAheadLog",
    "decode_facts",
    "encode_facts",
    "latest_snapshot",
    "list_snapshots",
    "prune_snapshots",
    "read_address",
    "scan_wal",
    "snapshot_path",
    "wal_path",
]
