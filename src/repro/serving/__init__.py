"""Multi-process serving: snapshots + write-ahead log + daemon + client.

This package turns a materialized session into an operable service:

* :mod:`repro.serving.wal` — the append-only, checksummed write-ahead log
  (torn-tail detection, crash-point fault injection);
* :mod:`repro.serving.compaction` — checkpoint/compaction policies and the
  data-directory layout;
* :mod:`repro.serving.daemon` — the server process: recover (snapshot ⊕
  WAL replay), serve sessions over a line-JSON socket protocol, group-
  commit concurrent writers, checkpoint inline (``python -m
  repro.serving.daemon`` to run one);
* :mod:`repro.serving.replication` — log-shipping read replicas: a
  :class:`ReplicaDaemon` tails the primary's shipped segments, replays
  them through the maintained-answer path and serves pinned-version reads
  (``python -m repro.serving.replication`` to run one);
* :mod:`repro.serving.client` — a thin client mirroring the in-process
  session API, with a reads-to-replica routing knob, typed refusals and
  bounded backoff retries;
* :mod:`repro.serving.admission` — the protection layer both daemons
  consult before validation: per-request admission limits
  (:class:`AdmissionPolicy`), the bounded commit queue's back-pressure
  parameters, and the shared-secret HMAC handshake
  (:class:`Authenticator`).

The recovery invariant, proven by ``tests/test_serving_recovery.py`` and
``tests/test_replication.py``: **snapshot ⊕ durable WAL prefix ≡ live
session** — after any crash, on the primary and on every replica, the
recovered state equals a clean replay of the durable segment chain.
"""

from .admission import (AdmissionPolicy, Authenticator, compute_mac,
                        load_token)
from .client import ClientRead, ServingClient, read_address
from .compaction import (CompactionPolicy, current_segment, latest_snapshot,
                         list_segments, list_snapshots, prune_segments,
                         prune_snapshots, segment_path, snapshot_path)
from .wal import (WALRecord, WriteAheadLog, decode_facts, encode_facts,
                  scan_wal)

_LAZY_EXPORTS = {
    "ProgramBackend": "daemon",
    "QualityBackend": "daemon",
    "ServingDaemon": "daemon",
    "ReplicaDaemon": "replication",
    "ShippedLogReader": "replication",
}


def __getattr__(name):
    # The daemon/replication modules are loaded lazily so ``python -m
    # repro.serving.daemon`` (or ``.replication``) does not import them
    # twice (once as a package attribute, once as ``__main__``), which
    # would trip runpy's double-import warning.
    module = _LAZY_EXPORTS.get(name)
    if module is not None:
        import importlib
        return getattr(importlib.import_module(f".{module}", __name__), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AdmissionPolicy",
    "Authenticator",
    "ClientRead",
    "CompactionPolicy",
    "ProgramBackend",
    "QualityBackend",
    "ReplicaDaemon",
    "ServingClient",
    "ServingDaemon",
    "ShippedLogReader",
    "WALRecord",
    "WriteAheadLog",
    "compute_mac",
    "current_segment",
    "decode_facts",
    "encode_facts",
    "latest_snapshot",
    "load_token",
    "list_segments",
    "list_snapshots",
    "prune_segments",
    "prune_snapshots",
    "read_address",
    "scan_wal",
    "segment_path",
    "snapshot_path",
]
