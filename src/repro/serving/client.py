"""A thin client for the serving daemon, mirroring the session API.

:class:`ServingClient` speaks the daemon's line-JSON protocol over a TCP
socket and exposes the same calls an in-process
:class:`~repro.engine.session.QuerySession` /
:class:`~repro.quality.session.QualitySession` would — ``answers``,
``holds``, ``add_facts``/``retract_facts``, ``quality_answers``,
``quality_version``, ``assess`` — with identical result shapes (immutable
tuples of value tuples, labeled nulls as
:class:`~repro.relational.values.Null`), so examples and tests can run the
same workload against either and compare byte for byte.

Connect by explicit address, or point :meth:`ServingClient.connect` at the
daemon's data directory — it polls ``daemon.json`` (written atomically by
the daemon at bind time), which is also how tests wait for a freshly
spawned daemon process to come up.

MVCC reads work like the engine's: :meth:`pin` holds a published version
against garbage collection until :meth:`unpin` (the daemon also releases a
connection's pins when it drops), and ``answers``/``holds`` accept a
``version`` to read against a pinned cut; :meth:`read` wraps the pair in a
context manager that mirrors :meth:`QuerySession.read`.

The daemon's **typed refusals** come back as the same exception classes
they were raised as on the server: an oversized request raises
:class:`~repro.errors.RequestTooLargeError`, an unauthenticated one
:class:`~repro.errors.AuthenticationError`, a full commit queue
:class:`~repro.errors.ServerBusyError` (carrying the daemon's
``retry_after`` hint), a mid-write shutdown
:class:`~repro.errors.DaemonShutdownError` — anything else stays a
:class:`~repro.errors.ServingProtocolError` with ``remote_type`` set.
Busy refusals are retried automatically with bounded exponential backoff
plus jitter (floored at the daemon's hint); pass ``unavailable_retries``
to also survive a daemon restart by reconnecting (and re-authenticating)
between attempts.

With ``auth_token=`` (or a daemon started with ``--auth-token-file``)
the client runs the shared-secret handshake right after connecting:
fetch a per-connection nonce (``auth_challenge``), answer with
``HMAC-SHA256(token, nonce)`` (``auth``).  The token never crosses the
wire.
"""

from __future__ import annotations

import json
import random
import socket
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Optional, Tuple, Union

from ..datalog.chase import Fact
from ..engine.snapshot import decode_row
from ..errors import (AuthenticationError, DaemonShutdownError,
                      DaemonUnavailableError, RequestTooLargeError,
                      ServerBusyError, ServingProtocolError)
from .admission import compute_mac
from .compaction import address_path
from .wal import encode_facts

PathLike = Union[str, Path]

AnswerRows = Tuple[Tuple[Any, ...], ...]

#: daemon-side refusals the client re-raises as their original class
#: (everything else becomes a ServingProtocolError with remote_type set)
_TYPED_REMOTE_ERRORS = {
    "RequestTooLargeError": RequestTooLargeError,
    "ServerBusyError": ServerBusyError,
    "AuthenticationError": AuthenticationError,
    "DaemonShutdownError": DaemonShutdownError,
}


def read_address(data_dir: PathLike) -> Dict[str, Any]:
    """The advertised address of the daemon serving ``data_dir``."""
    path = address_path(data_dir)
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise DaemonUnavailableError(
            f"no daemon advertises itself in {path}; start one with "
            f"python -m repro.serving.daemon --data-dir {data_dir}") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise DaemonUnavailableError(
            f"cannot read daemon address {path}: {exc}") from None


class ServingClient:
    """One connection to a serving daemon — optionally two.

    With ``replica=(host, port)`` the client also connects to a read
    replica (:mod:`repro.serving.replication`), and ``read_from`` routes
    the read-side calls — ``answers``, ``holds``, ``pin``/``unpin``/
    ``read`` — to it (``"replica"``) or to the primary (``"primary"``,
    the default).  Writes, checkpoints and stats always go to the
    primary; :meth:`replica_stats`/:meth:`replication_lag` query the
    replica directly.  ``read_from`` may be flipped at runtime, but pins
    are per-daemon: unpin on the side that pinned.

    ``connect_timeout`` bounds only the TCP connect (a stale
    ``daemon.json`` pointing at a dead port fails promptly as
    :class:`~repro.errors.DaemonUnavailableError` instead of hanging for
    the full I/O ``timeout``); ``busy_retries``/``unavailable_retries``
    and the ``backoff_*`` knobs shape the retry loop documented on
    :meth:`request`.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 replica: Optional[Tuple[str, int]] = None,
                 read_from: str = "primary",
                 connect_timeout: float = 5.0,
                 auth_token: Optional[Union[str, bytes]] = None,
                 busy_retries: int = 8, unavailable_retries: int = 0,
                 backoff_base: float = 0.05, backoff_max: float = 2.0,
                 on_retry: Optional[Callable[[str, int, float],
                                             None]] = None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.busy_retries = busy_retries
        self.unavailable_retries = unavailable_retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        #: called as ``on_retry(kind, attempt, floor)`` before each retry
        #: sleep (``kind`` is ``"busy"`` or ``"unavailable"``) — how load
        #: harnesses count retries without wrapping every call
        self.on_retry = on_retry
        self._auth_token = auth_token
        if read_from not in ("primary", "replica"):
            raise ValueError(
                f"read_from must be 'primary' or 'replica', not {read_from!r}")
        if read_from == "replica" and replica is None:
            raise ValueError(
                "read_from='replica' needs a replica=(host, port) address")
        self._replica: Optional["ServingClient"] = None
        if replica is not None:
            self._replica = ServingClient(
                replica[0], replica[1], timeout=timeout,
                connect_timeout=connect_timeout, auth_token=auth_token,
                busy_retries=busy_retries,
                unavailable_retries=unavailable_retries,
                backoff_base=backoff_base, backoff_max=backoff_max)
        self.read_from = read_from
        self._socket: Optional[socket.socket] = None
        self._file = None
        self._next_id = 0
        try:
            self._connect()
            self._handshake()
        except BaseException:
            self.close()
            raise

    def _connect(self) -> None:
        """(Re)establish the TCP connection — connect bounded by
        ``connect_timeout``, subsequent I/O by ``timeout``."""
        try:
            self._socket = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout)
        except OSError as exc:
            self._socket = None
            self._file = None
            raise DaemonUnavailableError(
                f"cannot connect to serving daemon at {self.host}:"
                f"{self.port}: {exc}") from None
        self._socket.settimeout(self.timeout)
        self._file = self._socket.makefile("rwb")

    def _handshake(self) -> None:
        """Authenticate this connection when a token was provided.

        A tokenless daemon answers ``required: false`` and the handshake
        is a no-op, so a client holding a token interoperates with an
        open daemon."""
        if self._auth_token is None:
            return
        challenge = self._request_once("auth_challenge")
        if not challenge.get("required"):
            return
        self._request_once(
            "auth", mac=compute_mac(self._auth_token, challenge["nonce"]))

    def _reconnect(self) -> None:
        """Drop the (broken) connection and dial + authenticate afresh."""
        for resource in (self._file, self._socket):
            try:
                if resource is not None:
                    resource.close()
            except OSError:  # pragma: no cover - already gone
                pass
        self._socket = None
        self._file = None
        self._connect()
        self._handshake()

    @classmethod
    def connect(cls, data_dir: PathLike, timeout: float = 30.0,
                wait: float = 10.0, replica_dir: Optional[PathLike] = None,
                read_from: str = "primary",
                auth_token: Optional[Union[str, bytes]] = None,
                **client_options: Any) -> "ServingClient":
        """Connect to the daemon serving ``data_dir``, waiting up to
        ``wait`` seconds for it to advertise itself (covers the race with a
        freshly spawned daemon process — including a stale ``daemon.json``
        left by a dead daemon whose port now refuses connections).
        ``replica_dir`` waits for and attaches the replica advertised
        there as well; extra keyword arguments (``connect_timeout``,
        ``busy_retries``, ...) pass through to the constructor."""
        deadline = time.monotonic() + wait

        def _await_address(directory: PathLike) -> Dict[str, Any]:
            while True:
                try:
                    return read_address(directory)
                except DaemonUnavailableError:
                    if time.monotonic() >= deadline:
                        raise
                    time.sleep(0.05)

        while True:
            address = _await_address(data_dir)
            replica = None
            if replica_dir is not None:
                found = _await_address(replica_dir)
                replica = (found["host"], found["port"])
            try:
                return cls(address["host"], address["port"], timeout=timeout,
                           replica=replica, read_from=read_from,
                           auth_token=auth_token, **client_options)
            except DaemonUnavailableError:
                # Advertised but not answering: either we raced the bind
                # or the file is stale.  Keep trying until the deadline.
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    def _reader(self) -> "ServingClient":
        """The connection read-side calls route to."""
        if self.read_from == "replica" and self._replica is not None:
            return self._replica
        return self

    # -- the wire ------------------------------------------------------------

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """One request/response exchange, with bounded automatic retries.

        A ``busy`` refusal (:class:`~repro.errors.ServerBusyError` — the
        daemon's commit queue is full) is retried up to ``busy_retries``
        times with exponential backoff plus jitter, never sleeping less
        than the daemon's ``retry_after`` hint: back-pressure is the
        daemon asking exactly for this.  A lost connection or a mid-write
        shutdown is retried up to ``unavailable_retries`` times (default
        0: off) by reconnecting and re-authenticating first — opt-in,
        because a write interrupted mid-exchange *may* have been applied
        and retrying it is not idempotent for all workloads.  Every other
        failure — typed refusals like
        :class:`~repro.errors.RequestTooLargeError` or
        :class:`~repro.errors.AuthenticationError` included — raises
        immediately.
        """
        busy_left = self.busy_retries
        unavailable_left = self.unavailable_retries
        attempt = 0
        while True:
            try:
                return self._request_once(op, **fields)
            except ServerBusyError as exc:
                if busy_left <= 0:
                    raise
                busy_left -= 1
                if self.on_retry is not None:
                    self.on_retry("busy", attempt, exc.retry_after)
                self._backoff(attempt, floor=exc.retry_after)
                attempt += 1
            except (DaemonUnavailableError, DaemonShutdownError):
                if unavailable_left <= 0 or op == "shutdown":
                    raise
                unavailable_left -= 1
                if self.on_retry is not None:
                    self.on_retry("unavailable", attempt, 0.0)
                self._backoff(attempt)
                attempt += 1
                try:
                    self._reconnect()
                except DaemonUnavailableError:
                    # Still down — the next loop iteration charges another
                    # retry, so a daemon that never comes back still fails
                    # after ``unavailable_retries`` attempts.
                    continue

    def _backoff(self, attempt: int, floor: float = 0.0) -> None:
        """Sleep one bounded-exponential-with-jitter retry delay."""
        delay = min(self.backoff_max, self.backoff_base * (2 ** attempt))
        delay = max(delay, float(floor or 0.0))
        # full jitter in [0.5, 1.5) — desynchronizes a herd of retriers
        time.sleep(delay * (0.5 + random.random()))

    def _request_once(self, op: str, **fields: Any) -> Dict[str, Any]:
        """One raw request/response round trip; raises on protocol errors
        and maps ``{"ok": false}`` responses to typed exceptions."""
        if self._file is None:
            raise DaemonUnavailableError(
                f"not connected to {self.host}:{self.port}")
        self._next_id += 1
        payload = {"op": op, "id": self._next_id, **fields}
        try:
            self._file.write(
                (json.dumps(payload, separators=(",", ":")) + "\n")
                .encode("utf-8"))
            self._file.flush()
            line = self._file.readline()
        except OSError as exc:
            raise DaemonUnavailableError(
                f"lost the connection to {self.host}:{self.port} during "
                f"{op!r}: {exc}") from None
        if not line:
            raise DaemonUnavailableError(
                f"the daemon at {self.host}:{self.port} closed the "
                f"connection (crashed?) during {op!r}")
        try:
            response = json.loads(line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServingProtocolError(
                f"unparseable response to {op!r}: {exc}") from None
        if not response.get("ok"):
            error_type = response.get("error_type", "")
            message = response.get("error", f"request {op!r} failed")
            typed = _TYPED_REMOTE_ERRORS.get(error_type)
            if typed is ServerBusyError:
                raise ServerBusyError(
                    message,
                    retry_after=float(response.get("retry_after") or 0.0))
            if typed is not None:
                raise typed(message)
            raise ServingProtocolError(message, remote_type=error_type)
        return response.get("result") or {}

    @staticmethod
    def _rows(result: Dict[str, Any]) -> AnswerRows:
        return tuple(decode_row(row) for row in result.get("rows", ()))

    # -- session API ---------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def answers(self, query: str, allow_nulls: bool = False,
                version: Optional[int] = None) -> AnswerRows:
        """Certain answers of ``query`` (``allow_nulls=True`` keeps rows
        with labeled nulls), optionally against a pinned version."""
        target = self._reader()
        fields: Dict[str, Any] = {"query": str(query),
                                  "allow_nulls": allow_nulls}
        if version is not None:
            fields["version"] = version
        return self._rows(target.request("answers", **fields))

    def holds(self, query: str, version: Optional[int] = None) -> bool:
        target = self._reader()
        fields: Dict[str, Any] = {"query": str(query)}
        if version is not None:
            fields["version"] = version
        return bool(target.request("holds", **fields)["holds"])

    def add_facts(self, facts: Iterable[Fact]) -> Dict[str, Any]:
        return self.request("add_facts", facts=encode_facts(facts))

    def retract_facts(self, facts: Iterable[Fact]) -> Dict[str, Any]:
        return self.request("retract_facts", facts=encode_facts(facts))

    def quality_answers(self, query: str) -> AnswerRows:
        return self._rows(self.request("quality_answers", query=str(query)))

    def quality_version(self, relation: str) -> AnswerRows:
        return self._rows(self.request("quality_version", relation=relation))

    def assess(self) -> Dict[str, Any]:
        return self.request("assess")

    # -- versioned reads -----------------------------------------------------

    def pin(self, version: Optional[int] = None) -> int:
        """Pin a published version (latest when ``None``); returns it.
        Routed like the other read calls: the pin lands on whichever
        daemon :attr:`read_from` selects."""
        fields = {} if version is None else {"version": version}
        return int(self._reader().request("pin", **fields)["version"])

    def unpin(self, version: int) -> bool:
        """Release one pin — best effort, idempotent.

        Returns ``False`` instead of raising when the daemon is gone,
        restarted, or no longer holds the pin: an unpin only releases
        resources, and a dead or restarted daemon has released them
        already.  Doing anything noisier would mask real errors — the
        common caller is :meth:`ClientRead.close` inside ``__exit__``,
        where a raise would swallow the body's exception.  Genuine
        protocol failures (an unreachable daemon aside) still raise.
        """
        target = self._reader()
        try:
            target.request("unpin", version=version)
            return True
        except DaemonUnavailableError:
            return False
        except ServingProtocolError as exc:
            # The daemon answered but no longer holds the pin (connection
            # dropped and its pins were released, daemon restarted, or a
            # double unpin) — already released, so the goal is met.
            if exc.remote_type in ("ServingProtocolError", "VersioningError"):
                return False
            raise

    def read(self, version: Optional[int] = None) -> "ClientRead":
        """A context manager pinning one version for consistent reads."""
        return ClientRead(self, version)

    # -- operations ----------------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        return self.request("checkpoint")

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def replica_stats(self) -> Dict[str, Any]:
        """The attached replica's stats (replication lag lives in
        ``["serving"]["replication"]``)."""
        if self._replica is None:
            raise ServingProtocolError(
                "this client has no replica attached; pass "
                "replica=(host, port) when constructing it")
        return self._replica.stats()

    def replication_lag(self) -> int:
        """Durable primary records the attached replica has not applied."""
        return int(self.replica_stats()["serving"]["replication"]
                   ["lag_records"])

    def recovery(self) -> Dict[str, Any]:
        return self.request("recovery")

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._replica is not None:
            self._replica.close()
        for resource in (self._file, self._socket):
            try:
                if resource is not None:
                    resource.close()
            except OSError:  # pragma: no cover - already gone
                pass
        self._file = None
        self._socket = None

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServingClient({self.host}:{self.port})"


class ClientRead:
    """The client-side mirror of :class:`~repro.engine.versioning.ReadTransaction`."""

    def __init__(self, client: ServingClient, version: Optional[int] = None):
        self._client = client
        self.version = client.pin(version)
        self._open = True

    def answers(self, query: str, allow_nulls: bool = False) -> AnswerRows:
        return self._client.answers(query, allow_nulls=allow_nulls,
                                    version=self.version)

    def holds(self, query: str) -> bool:
        return self._client.holds(query, version=self.version)

    def close(self) -> None:
        if self._open:
            self._open = False
            self._client.unpin(self.version)

    def __enter__(self) -> "ClientRead":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
