"""A thin client for the serving daemon, mirroring the session API.

:class:`ServingClient` speaks the daemon's line-JSON protocol over a TCP
socket and exposes the same calls an in-process
:class:`~repro.engine.session.QuerySession` /
:class:`~repro.quality.session.QualitySession` would — ``answers``,
``holds``, ``add_facts``/``retract_facts``, ``quality_answers``,
``quality_version``, ``assess`` — with identical result shapes (immutable
tuples of value tuples, labeled nulls as
:class:`~repro.relational.values.Null`), so examples and tests can run the
same workload against either and compare byte for byte.

Connect by explicit address, or point :meth:`ServingClient.connect` at the
daemon's data directory — it polls ``daemon.json`` (written atomically by
the daemon at bind time), which is also how tests wait for a freshly
spawned daemon process to come up.

MVCC reads work like the engine's: :meth:`pin` holds a published version
against garbage collection until :meth:`unpin` (the daemon also releases a
connection's pins when it drops), and ``answers``/``holds`` accept a
``version`` to read against a pinned cut; :meth:`read` wraps the pair in a
context manager that mirrors :meth:`QuerySession.read`.
"""

from __future__ import annotations

import json
import socket
import time
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Tuple, Union

from ..datalog.chase import Fact
from ..engine.snapshot import decode_row
from ..errors import DaemonUnavailableError, ServingProtocolError
from .compaction import address_path
from .wal import encode_facts

PathLike = Union[str, Path]

AnswerRows = Tuple[Tuple[Any, ...], ...]


def read_address(data_dir: PathLike) -> Dict[str, Any]:
    """The advertised address of the daemon serving ``data_dir``."""
    path = address_path(data_dir)
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise DaemonUnavailableError(
            f"no daemon advertises itself in {path}; start one with "
            f"python -m repro.serving.daemon --data-dir {data_dir}") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise DaemonUnavailableError(
            f"cannot read daemon address {path}: {exc}") from None


class ServingClient:
    """One connection to a serving daemon — optionally two.

    With ``replica=(host, port)`` the client also connects to a read
    replica (:mod:`repro.serving.replication`), and ``read_from`` routes
    the read-side calls — ``answers``, ``holds``, ``pin``/``unpin``/
    ``read`` — to it (``"replica"``) or to the primary (``"primary"``,
    the default).  Writes, checkpoints and stats always go to the
    primary; :meth:`replica_stats`/:meth:`replication_lag` query the
    replica directly.  ``read_from`` may be flipped at runtime, but pins
    are per-daemon: unpin on the side that pinned.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0,
                 replica: Optional[Tuple[str, int]] = None,
                 read_from: str = "primary"):
        self.host = host
        self.port = port
        if read_from not in ("primary", "replica"):
            raise ValueError(
                f"read_from must be 'primary' or 'replica', not {read_from!r}")
        if read_from == "replica" and replica is None:
            raise ValueError(
                "read_from='replica' needs a replica=(host, port) address")
        self._replica: Optional["ServingClient"] = None
        if replica is not None:
            self._replica = ServingClient(replica[0], replica[1],
                                          timeout=timeout)
        self.read_from = read_from
        try:
            self._socket = socket.create_connection((host, port),
                                                    timeout=timeout)
        except OSError as exc:
            if self._replica is not None:
                self._replica.close()
            raise DaemonUnavailableError(
                f"cannot connect to serving daemon at {host}:{port}: "
                f"{exc}") from None
        self._file = self._socket.makefile("rwb")
        self._next_id = 0

    @classmethod
    def connect(cls, data_dir: PathLike, timeout: float = 30.0,
                wait: float = 10.0, replica_dir: Optional[PathLike] = None,
                read_from: str = "primary") -> "ServingClient":
        """Connect to the daemon serving ``data_dir``, waiting up to
        ``wait`` seconds for it to advertise itself (covers the race with a
        freshly spawned daemon process).  ``replica_dir`` waits for and
        attaches the replica advertised there as well."""
        deadline = time.monotonic() + wait

        def _await_address(directory: PathLike) -> Dict[str, Any]:
            while True:
                try:
                    return read_address(directory)
                except DaemonUnavailableError:
                    if time.monotonic() >= deadline:
                        raise
                    time.sleep(0.05)

        address = _await_address(data_dir)
        replica = None
        if replica_dir is not None:
            found = _await_address(replica_dir)
            replica = (found["host"], found["port"])
        return cls(address["host"], address["port"], timeout=timeout,
                   replica=replica, read_from=read_from)

    def _reader(self) -> "ServingClient":
        """The connection read-side calls route to."""
        if self.read_from == "replica" and self._replica is not None:
            return self._replica
        return self

    # -- the wire ------------------------------------------------------------

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """One request/response round trip; raises on protocol errors and
        on ``{"ok": false}`` responses."""
        self._next_id += 1
        payload = {"op": op, "id": self._next_id, **fields}
        try:
            self._file.write(
                (json.dumps(payload, separators=(",", ":")) + "\n")
                .encode("utf-8"))
            self._file.flush()
            line = self._file.readline()
        except OSError as exc:
            raise DaemonUnavailableError(
                f"lost the connection to {self.host}:{self.port} during "
                f"{op!r}: {exc}") from None
        if not line:
            raise DaemonUnavailableError(
                f"the daemon at {self.host}:{self.port} closed the "
                f"connection (crashed?) during {op!r}")
        try:
            response = json.loads(line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServingProtocolError(
                f"unparseable response to {op!r}: {exc}") from None
        if not response.get("ok"):
            raise ServingProtocolError(
                response.get("error", f"request {op!r} failed"),
                remote_type=response.get("error_type", ""))
        return response.get("result") or {}

    @staticmethod
    def _rows(result: Dict[str, Any]) -> AnswerRows:
        return tuple(decode_row(row) for row in result.get("rows", ()))

    # -- session API ---------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def answers(self, query: str, allow_nulls: bool = False,
                version: Optional[int] = None) -> AnswerRows:
        """Certain answers of ``query`` (``allow_nulls=True`` keeps rows
        with labeled nulls), optionally against a pinned version."""
        target = self._reader()
        fields: Dict[str, Any] = {"query": str(query),
                                  "allow_nulls": allow_nulls}
        if version is not None:
            fields["version"] = version
        return self._rows(target.request("answers", **fields))

    def holds(self, query: str, version: Optional[int] = None) -> bool:
        target = self._reader()
        fields: Dict[str, Any] = {"query": str(query)}
        if version is not None:
            fields["version"] = version
        return bool(target.request("holds", **fields)["holds"])

    def add_facts(self, facts: Iterable[Fact]) -> Dict[str, Any]:
        return self.request("add_facts", facts=encode_facts(facts))

    def retract_facts(self, facts: Iterable[Fact]) -> Dict[str, Any]:
        return self.request("retract_facts", facts=encode_facts(facts))

    def quality_answers(self, query: str) -> AnswerRows:
        return self._rows(self.request("quality_answers", query=str(query)))

    def quality_version(self, relation: str) -> AnswerRows:
        return self._rows(self.request("quality_version", relation=relation))

    def assess(self) -> Dict[str, Any]:
        return self.request("assess")

    # -- versioned reads -----------------------------------------------------

    def pin(self, version: Optional[int] = None) -> int:
        """Pin a published version (latest when ``None``); returns it.
        Routed like the other read calls: the pin lands on whichever
        daemon :attr:`read_from` selects."""
        fields = {} if version is None else {"version": version}
        return int(self._reader().request("pin", **fields)["version"])

    def unpin(self, version: int) -> bool:
        """Release one pin — best effort, idempotent.

        Returns ``False`` instead of raising when the daemon is gone,
        restarted, or no longer holds the pin: an unpin only releases
        resources, and a dead or restarted daemon has released them
        already.  Doing anything noisier would mask real errors — the
        common caller is :meth:`ClientRead.close` inside ``__exit__``,
        where a raise would swallow the body's exception.  Genuine
        protocol failures (an unreachable daemon aside) still raise.
        """
        target = self._reader()
        try:
            target.request("unpin", version=version)
            return True
        except DaemonUnavailableError:
            return False
        except ServingProtocolError as exc:
            # The daemon answered but no longer holds the pin (connection
            # dropped and its pins were released, daemon restarted, or a
            # double unpin) — already released, so the goal is met.
            if exc.remote_type in ("ServingProtocolError", "VersioningError"):
                return False
            raise

    def read(self, version: Optional[int] = None) -> "ClientRead":
        """A context manager pinning one version for consistent reads."""
        return ClientRead(self, version)

    # -- operations ----------------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        return self.request("checkpoint")

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def replica_stats(self) -> Dict[str, Any]:
        """The attached replica's stats (replication lag lives in
        ``["serving"]["replication"]``)."""
        if self._replica is None:
            raise ServingProtocolError(
                "this client has no replica attached; pass "
                "replica=(host, port) when constructing it")
        return self._replica.stats()

    def replication_lag(self) -> int:
        """Durable primary records the attached replica has not applied."""
        return int(self.replica_stats()["serving"]["replication"]
                   ["lag_records"])

    def recovery(self) -> Dict[str, Any]:
        return self.request("recovery")

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._replica is not None:
            self._replica.close()
        try:
            self._file.close()
        except OSError:  # pragma: no cover - already gone
            pass
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServingClient({self.host}:{self.port})"


class ClientRead:
    """The client-side mirror of :class:`~repro.engine.versioning.ReadTransaction`."""

    def __init__(self, client: ServingClient, version: Optional[int] = None):
        self._client = client
        self.version = client.pin(version)
        self._open = True

    def answers(self, query: str, allow_nulls: bool = False) -> AnswerRows:
        return self._client.answers(query, allow_nulls=allow_nulls,
                                    version=self.version)

    def holds(self, query: str) -> bool:
        return self._client.holds(query, version=self.version)

    def close(self) -> None:
        if self._open:
            self._open = False
            self._client.unpin(self.version)

    def __enter__(self) -> "ClientRead":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
