"""A thin client for the serving daemon, mirroring the session API.

:class:`ServingClient` speaks the daemon's line-JSON protocol over a TCP
socket and exposes the same calls an in-process
:class:`~repro.engine.session.QuerySession` /
:class:`~repro.quality.session.QualitySession` would — ``answers``,
``holds``, ``add_facts``/``retract_facts``, ``quality_answers``,
``quality_version``, ``assess`` — with identical result shapes (immutable
tuples of value tuples, labeled nulls as
:class:`~repro.relational.values.Null`), so examples and tests can run the
same workload against either and compare byte for byte.

Connect by explicit address, or point :meth:`ServingClient.connect` at the
daemon's data directory — it polls ``daemon.json`` (written atomically by
the daemon at bind time), which is also how tests wait for a freshly
spawned daemon process to come up.

MVCC reads work like the engine's: :meth:`pin` holds a published version
against garbage collection until :meth:`unpin` (the daemon also releases a
connection's pins when it drops), and ``answers``/``holds`` accept a
``version`` to read against a pinned cut; :meth:`read` wraps the pair in a
context manager that mirrors :meth:`QuerySession.read`.
"""

from __future__ import annotations

import json
import socket
import time
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Tuple, Union

from ..datalog.chase import Fact
from ..engine.snapshot import decode_row
from ..errors import DaemonUnavailableError, ServingProtocolError
from .compaction import address_path
from .wal import encode_facts

PathLike = Union[str, Path]

AnswerRows = Tuple[Tuple[Any, ...], ...]


def read_address(data_dir: PathLike) -> Dict[str, Any]:
    """The advertised address of the daemon serving ``data_dir``."""
    path = address_path(data_dir)
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise DaemonUnavailableError(
            f"no daemon advertises itself in {path}; start one with "
            f"python -m repro.serving.daemon --data-dir {data_dir}") from None
    except (OSError, json.JSONDecodeError) as exc:
        raise DaemonUnavailableError(
            f"cannot read daemon address {path}: {exc}") from None


class ServingClient:
    """One connection to a serving daemon."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.host = host
        self.port = port
        try:
            self._socket = socket.create_connection((host, port),
                                                    timeout=timeout)
        except OSError as exc:
            raise DaemonUnavailableError(
                f"cannot connect to serving daemon at {host}:{port}: "
                f"{exc}") from None
        self._file = self._socket.makefile("rwb")
        self._next_id = 0

    @classmethod
    def connect(cls, data_dir: PathLike, timeout: float = 30.0,
                wait: float = 10.0) -> "ServingClient":
        """Connect to the daemon serving ``data_dir``, waiting up to
        ``wait`` seconds for it to advertise itself (covers the race with a
        freshly spawned daemon process)."""
        deadline = time.monotonic() + wait
        while True:
            try:
                address = read_address(data_dir)
                return cls(address["host"], address["port"], timeout=timeout)
            except DaemonUnavailableError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    # -- the wire ------------------------------------------------------------

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """One request/response round trip; raises on protocol errors and
        on ``{"ok": false}`` responses."""
        self._next_id += 1
        payload = {"op": op, "id": self._next_id, **fields}
        try:
            self._file.write(
                (json.dumps(payload, separators=(",", ":")) + "\n")
                .encode("utf-8"))
            self._file.flush()
            line = self._file.readline()
        except OSError as exc:
            raise DaemonUnavailableError(
                f"lost the connection to {self.host}:{self.port} during "
                f"{op!r}: {exc}") from None
        if not line:
            raise DaemonUnavailableError(
                f"the daemon at {self.host}:{self.port} closed the "
                f"connection (crashed?) during {op!r}")
        try:
            response = json.loads(line.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServingProtocolError(
                f"unparseable response to {op!r}: {exc}") from None
        if not response.get("ok"):
            raise ServingProtocolError(
                response.get("error", f"request {op!r} failed"),
                remote_type=response.get("error_type", ""))
        return response.get("result") or {}

    @staticmethod
    def _rows(result: Dict[str, Any]) -> AnswerRows:
        return tuple(decode_row(row) for row in result.get("rows", ()))

    # -- session API ---------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def answers(self, query: str, allow_nulls: bool = False,
                version: Optional[int] = None) -> AnswerRows:
        """Certain answers of ``query`` (``allow_nulls=True`` keeps rows
        with labeled nulls), optionally against a pinned version."""
        fields: Dict[str, Any] = {"query": str(query),
                                  "allow_nulls": allow_nulls}
        if version is not None:
            fields["version"] = version
        return self._rows(self.request("answers", **fields))

    def holds(self, query: str, version: Optional[int] = None) -> bool:
        fields: Dict[str, Any] = {"query": str(query)}
        if version is not None:
            fields["version"] = version
        return bool(self.request("holds", **fields)["holds"])

    def add_facts(self, facts: Iterable[Fact]) -> Dict[str, Any]:
        return self.request("add_facts", facts=encode_facts(facts))

    def retract_facts(self, facts: Iterable[Fact]) -> Dict[str, Any]:
        return self.request("retract_facts", facts=encode_facts(facts))

    def quality_answers(self, query: str) -> AnswerRows:
        return self._rows(self.request("quality_answers", query=str(query)))

    def quality_version(self, relation: str) -> AnswerRows:
        return self._rows(self.request("quality_version", relation=relation))

    def assess(self) -> Dict[str, Any]:
        return self.request("assess")

    # -- versioned reads -----------------------------------------------------

    def pin(self, version: Optional[int] = None) -> int:
        """Pin a published version (latest when ``None``); returns it."""
        fields = {} if version is None else {"version": version}
        return int(self.request("pin", **fields)["version"])

    def unpin(self, version: int) -> None:
        self.request("unpin", version=version)

    def read(self, version: Optional[int] = None) -> "ClientRead":
        """A context manager pinning one version for consistent reads."""
        return ClientRead(self, version)

    # -- operations ----------------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        return self.request("checkpoint")

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")

    def recovery(self) -> Dict[str, Any]:
        return self.request("recovery")

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:  # pragma: no cover - already gone
            pass
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServingClient({self.host}:{self.port})"


class ClientRead:
    """The client-side mirror of :class:`~repro.engine.versioning.ReadTransaction`."""

    def __init__(self, client: ServingClient, version: Optional[int] = None):
        self._client = client
        self.version = client.pin(version)
        self._open = True

    def answers(self, query: str, allow_nulls: bool = False) -> AnswerRows:
        return self._client.answers(query, allow_nulls=allow_nulls,
                                    version=self.version)

    def holds(self, query: str) -> bool:
        return self._client.holds(query, version=self.version)

    def close(self) -> None:
        if self._open:
            self._open = False
            self._client.unpin(self.version)

    def __enter__(self) -> "ClientRead":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
