"""Log-shipping read replicas: tail the primary's WAL segments, replay,
serve pinned-version reads.

A :class:`ReplicaDaemon` follows a primary's data directory — the
"shipped log" (in production the directory would be rsync'd or mounted;
here it is simply read in place).  It seeds itself from the primary's
newest snapshot, then **tails** the ``wal-<baselsn>.log`` segment chain
(:class:`ShippedLogReader`), replaying every record past its position
through the backend's own maintained-answer update path — the same path
the primary applies and recovers through, so a caught-up replica is
observationally identical to the primary at the same LSN.

Reads are served off the replica's own MVCC
:class:`~repro.engine.versioning.VersionStore` over the same line-JSON
protocol the primary speaks: ``answers``/``holds``/``pin``/``unpin`` work
unchanged (a pinned version stays frozen while replay advances), writes
are refused with a pointer back to the primary.  Replication lag — how
many durable primary records the replica has not yet applied — is
surfaced through the ``stats`` request.

The shipped files belong to the primary: the reader never truncates or
repairs them.  A torn tail on the live segment is simply "not shipped
yet"; if the primary rolls a never-acknowledged suffix back out of the
log under the reader's feet (or prunes segments the replica still
needs), the replica notices the mismatch and **re-seeds** itself from the
primary's newest snapshot — rolled-back records are never checkpointed,
so a reseed always converges back onto the primary's history.

Run standalone with::

    python -m repro.serving.replication \\
        --primary-data-dir ./serving-data --data-dir ./replica-data
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..datalog.parser import parse_program
from ..engine.snapshot import encode_row, wal_position
from ..engine.stats import ServingStats
from ..errors import (ServingError, ServingProtocolError, WALCorruptionError,
                      WALError)
from .admission import AdmissionPolicy, Authenticator, load_token
from .compaction import address_path, latest_snapshot, list_segments
from .daemon import (PROTOCOL_VERSION, ConnectionState, ProgramBackend,
                     QualityBackend, _LineServer, _error_response,
                     check_authenticated, handle_auth_op)
from .wal import MAGIC, OPS, WALRecord, _parse_frame, decode_facts

PathLike = Union[str, Path]

#: protocol requests a replica refuses (they mutate durable state)
WRITE_OPS = ("add_facts", "retract_facts", "checkpoint")


class ReplicationGapError(ServingError):
    """The shipped log no longer covers the replica's position (segments
    pruned, or the log rewritten under the reader); re-seed from the
    primary's newest snapshot."""


class ShippedLogReader:
    """Incrementally read a primary's segment chain, record by record.

    Tracks a position — the next LSN to deliver, plus the byte offset
    reached in the segment being tailed — and on each :meth:`poll` parses
    whatever complete frames have appeared past it, following rotations
    to newer segments.  Strictly read-only on the shipped files.

    Raises :class:`ReplicationGapError` when the chain no longer covers
    the position and :class:`~repro.errors.WALCorruptionError` when the
    bytes at the position stop matching the expected records (both mean:
    re-seed).
    """

    def __init__(self, primary_dir: PathLike, start_lsn: int):
        self.primary_dir = Path(primary_dir)
        #: the next record LSN to deliver
        self.next_lsn = start_lsn + 1
        self._segment_base: Optional[int] = None
        self._segment_path: Optional[Path] = None
        self._offset = 0
        #: LSN the next frame in the current segment must carry
        self._expected: Optional[int] = None

    # -- segment selection ---------------------------------------------------

    def _select_segment(self) -> bool:
        """Point the reader at the segment that contains ``next_lsn``.

        Returns ``False`` when no segment can contain it *yet* (the chain
        ends exactly one rotation behind — nothing shipped)."""
        segments = list_segments(self.primary_dir)
        eligible = [(base, path) for base, path in segments
                    if base <= self.next_lsn - 1]
        if not eligible:
            if segments:
                raise ReplicationGapError(
                    f"the shipped log in {self.primary_dir} starts at LSN "
                    f"{segments[0][0]} but the replica needs records from "
                    f"{self.next_lsn}; the segments in between were pruned")
            return False
        base, path = eligible[-1]
        self._segment_base = base
        self._segment_path = path
        self._offset = 0
        self._expected = None  # validated against the header on first read
        return True

    def _advance_segment(self) -> bool:
        """Move to the successor segment once the current one is spent.

        Returns ``True`` when a successor based exactly at the last
        consumed LSN exists."""
        segments = list_segments(self.primary_dir)
        newer = [(base, path) for base, path in segments
                 if base > (self._segment_base or 0)]
        if not newer:
            return False
        base, path = newer[0]
        if base > self.next_lsn - 1:
            # The successor starts past what we consumed: records are
            # missing from the current segment (rolled back or the file
            # was replaced).  Reseed.
            raise ReplicationGapError(
                f"segment {path.name} starts at LSN {base} but the replica "
                f"has only seen up to {self.next_lsn - 1}; the shipped log "
                "skipped records")
        if base < self.next_lsn - 1:
            return False  # still inside the current segment's successor gap
        self._segment_base = base
        self._segment_path = path
        self._offset = 0
        self._expected = None
        return True

    # -- polling -------------------------------------------------------------

    def poll(self) -> List[WALRecord]:
        """Every record with LSN ≥ ``next_lsn`` that is fully shipped."""
        records: List[WALRecord] = []
        if self._segment_path is None and not self._select_segment():
            return records
        while True:
            records.extend(self._read_available())
            if not self._advance_segment():
                return records

    def _read_available(self) -> List[WALRecord]:
        """Parse complete frames past the current offset; stop at a torn
        or not-yet-shipped tail."""
        path = self._segment_path
        try:
            size = path.stat().st_size
        except OSError:
            raise ReplicationGapError(
                f"shipped segment {path.name} disappeared under the reader")
        if size < self._offset:
            raise ReplicationGapError(
                f"shipped segment {path.name} shrank below the replica's "
                f"position ({size} < {self._offset} bytes); the primary "
                "rolled back records the replica already read")
        with open(path, "rb") as handle:
            handle.seek(self._offset)
            data = handle.read()
        records: List[WALRecord] = []
        position = self._offset
        for line in data.splitlines(keepends=True):
            if not line.endswith(b"\n"):
                break  # torn / still being shipped — try again next poll
            body = _parse_frame(line)
            if body is None:
                raise WALCorruptionError(
                    f"shipped segment {path.name} holds an unparseable "
                    f"frame at byte {position}; the log changed under the "
                    "replica")
            if position == 0:
                if body.get("magic") != MAGIC or \
                        body.get("base_lsn") != self._segment_base:
                    raise WALCorruptionError(
                        f"shipped segment {path.name} declares base LSN "
                        f"{body.get('base_lsn')!r}, expected "
                        f"{self._segment_base}")
                self._expected = self._segment_base + 1
            else:
                if body.get("lsn") != self._expected or \
                        body.get("op") not in OPS:
                    raise WALCorruptionError(
                        f"shipped segment {path.name} carries record "
                        f"{body.get('lsn')!r} where {self._expected} was "
                        "expected; the log changed under the replica")
                if self._expected >= self.next_lsn:
                    records.append(WALRecord(
                        lsn=self._expected, op=body["op"],
                        facts=tuple(decode_facts(body["facts"]))))
                    self.next_lsn = self._expected + 1
                self._expected += 1
            position += len(line)
            self._offset = position
        return records


class ReplicaDaemon:
    """Serve read-only, pinned-version answers off a shipped log.

    Same constructor shape as :class:`~repro.serving.daemon.ServingDaemon`
    — a backend plus a data directory of its own (for the address file) —
    with ``primary_dir`` pointing at the primary's data directory.
    """

    def __init__(self, backend, primary_dir: PathLike, data_dir: PathLike,
                 poll_interval: float = 0.05,
                 admission: Optional[AdmissionPolicy] = None,
                 auth_token: Optional[Union[str, bytes]] = None):
        self.backend = backend
        self.primary_dir = Path(primary_dir)
        self.data_dir = Path(data_dir)
        if self.data_dir.resolve() == self.primary_dir.resolve():
            raise ServingError(
                "a replica needs its own data directory — pointing it at "
                "the primary's would fight over daemon.json")
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.poll_interval = poll_interval
        #: the same protection layer the primary runs: the shared line
        #: handler enforces ``max_request_bytes`` at the socket boundary,
        #: and the auth gate guards every non-handshake op
        self.admission = admission if admission is not None \
            else AdmissionPolicy()
        self.authenticator = Authenticator(auth_token)
        #: last LSN applied to the backend (the replica's visible position)
        self.applied_lsn = 0
        self.serving_stats = ServingStats()
        self.recovery: Optional[Dict[str, Any]] = None
        self.last_error: Optional[str] = None
        #: serializes replay/reseed against quality reads (MVCC
        #: answers/holds never take it — replay publishes new versions,
        #: readers keep their pinned ones)
        self._lock = threading.RLock()
        self._reader: Optional[ShippedLogReader] = None
        self._server: Optional[_LineServer] = None
        self._thread: Optional[threading.Thread] = None
        self._poller: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._default_connection: Optional[ConnectionState] = None
        self._connections: Dict[int, ConnectionState] = {}
        self._connections_lock = threading.Lock()

    # -- seeding / recovery --------------------------------------------------

    def recover(self) -> Dict[str, Any]:
        """Seed from the primary's newest snapshot and position the tailer
        at its cut; returns a report like the primary's."""
        with self._lock:
            cut = self._seed()
            self._default_connection = ConnectionState(self.backend.versions)
            report = {"bootstrapped": False, "snapshot": True,
                      "base_lsn": cut, "replayed_records": 0,
                      "torn_tail": None, "truncated_bytes": 0}
            self.recovery = report
            return report

    def _seed(self) -> int:
        found = latest_snapshot(self.primary_dir)
        if found is None:
            raise ServingError(
                f"the primary data directory {self.primary_dir} holds no "
                "snapshot to seed a replica from; let the primary recover "
                "(and checkpoint) first")
        lsn, path = found
        self.backend.restore(path)
        cut = wal_position(self.backend.snapshot_meta, default=lsn)
        self.applied_lsn = cut
        self._reader = ShippedLogReader(self.primary_dir, cut)
        return cut

    def _reseed(self, reason: str) -> None:
        """Fall back to the primary's newest snapshot after the shipped
        log moved from under us (pruned segments, rolled-back records)."""
        self.serving_stats.reseeds += 1
        self.last_error = reason
        self._seed()

    # -- replay --------------------------------------------------------------

    def poll(self) -> int:
        """Replay every newly shipped record; returns how many."""
        with self._lock:
            if self._reader is None:
                raise ServingError("the replica has not recovered yet; "
                                   "call recover() before polling")
            self.serving_stats.polls += 1
            try:
                records = self._reader.poll()
            except (WALError, ServingError) as exc:
                self._reseed(str(exc))
                try:
                    records = self._reader.poll()
                except (WALError, ServingError):
                    return 0  # stay at the reseeded cut; retry next poll
            for record in records:
                self.backend.apply(record)
                self.applied_lsn = record.lsn
                self.serving_stats.records_replayed += 1
            if records:
                self.last_error = None
            return len(records)

    def primary_lsn(self) -> int:
        """The primary's durable tail: the last record LSN fully shipped
        (scans the live segment; torn tails count as not shipped)."""
        segments = list_segments(self.primary_dir)
        if not segments:
            found = latest_snapshot(self.primary_dir)
            return found[0] if found else 0
        base, path = segments[-1]
        probe = ShippedLogReader(self.primary_dir, base)
        probe._segment_base, probe._segment_path = base, path
        try:
            records = probe._read_available()
        except (WALError, ServingError):
            return base
        return records[-1].lsn if records else base

    def replication_status(self) -> Dict[str, Any]:
        """Lag and replay counters (the ``stats`` op's ``serving`` slot)."""
        primary = self.primary_lsn()
        with self._lock:
            return {
                "applied_lsn": self.applied_lsn,
                "primary_lsn": primary,
                "lag_records": max(0, primary - self.applied_lsn),
                "records_replayed": self.serving_stats.records_replayed,
                "reseeds": self.serving_stats.reseeds,
                "polls": self.serving_stats.polls,
                "last_error": self.last_error,
            }

    def catch_up(self, timeout: float = 30.0) -> int:
        """Poll until the replica has applied the primary's durable tail
        (or ``timeout`` elapses); returns the remaining lag in records."""
        deadline = time.monotonic() + timeout
        while True:
            self.poll()
            lag = self.primary_lsn() - self.applied_lsn
            if lag <= 0 or time.monotonic() >= deadline:
                return max(0, lag)
            time.sleep(min(self.poll_interval, 0.02))

    # -- request dispatch ----------------------------------------------------

    def handle(self, request: Dict[str, Any],
               connection: Optional[ConnectionState] = None) -> Dict[str, Any]:
        """Serve one protocol request; never raises (same contract as the
        primary's :meth:`~repro.serving.daemon.ServingDaemon.handle`)."""
        request_id = request.get("id") if isinstance(request, dict) else None
        try:
            if not isinstance(request, dict) or "op" not in request:
                raise ServingProtocolError(
                    'requests are JSON objects with an "op" field')
            result = self._dispatch(request,
                                    connection or self._default_connection)
            return {"ok": True, "id": request_id, "result": result}
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            return _error_response(request_id, exc)

    def _dispatch(self, request: Dict[str, Any],
                  connection: ConnectionState) -> Dict[str, Any]:
        op = request["op"]
        backend = self.backend
        check_authenticated(self, op, connection)
        handshake = handle_auth_op(self, op, request, connection)
        if handshake is not None:
            return handshake
        if op in WRITE_OPS:
            raise ServingProtocolError(
                f"request {op!r} is a write, but this daemon is a read "
                "replica — send writes to the primary")
        if op == "ping":
            return {"pong": True, "kind": backend.kind, "role": "replica",
                    "protocol_version": PROTOCOL_VERSION,
                    "version": backend.version, "lsn": self.applied_lsn,
                    "auth_required": self.authenticator.required}
        if op == "answers":
            with backend.session.read(request.get("version")) as txn:
                rows = txn.answers(request["query"],
                                   allow_nulls=bool(request.get("allow_nulls")))
                return {"rows": [encode_row(row) for row in rows],
                        "version": txn.version}
        if op == "holds":
            with backend.session.read(request.get("version")) as txn:
                return {"holds": txn.holds(request["query"]),
                        "version": txn.version}
        if op == "pin":
            return {"version": connection.pin(request.get("version"))}
        if op == "unpin":
            connection.unpin(int(request["version"]))
            return {"unpinned": int(request["version"])}
        if op == "stats":
            stats = backend.stats()
            stats["serving"] = {
                "role": "replica",
                "replication": self.replication_status(),
                "counters": self.serving_stats.as_dict(),
                "admission": {
                    "max_request_bytes": self.admission.max_request_bytes,
                    "auth_required": self.authenticator.required,
                },
            }
            return stats
        if op == "recovery":
            return dict(self.recovery or {})
        if op == "quality_answers":
            self._require_quality(op)
            with self._lock:
                rows = backend.quality_answers(request["query"])
            return {"rows": [encode_row(row) for row in rows]}
        if op == "quality_version":
            self._require_quality(op)
            with self._lock:
                rows = backend.quality_version(request["relation"])
            return {"rows": [encode_row(row) for row in rows]}
        if op == "assess":
            self._require_quality(op)
            with self._lock:
                return backend.assess()
        if op == "shutdown":
            connection.closing = True
            threading.Thread(target=self.stop, name="repro-replica-stop",
                             daemon=True).start()
            return {"stopping": True}
        raise ServingProtocolError(f"unknown request op {op!r}")

    def _require_quality(self, op: str) -> None:
        if not hasattr(self.backend, "quality_answers"):
            raise ServingProtocolError(
                f"request {op!r} needs a quality backend, but this replica "
                "serves a plain program (start it with --hospital)")

    def _register_connection(self, connection: ConnectionState) -> None:
        with self._connections_lock:
            self._connections[id(connection)] = connection

    def _unregister_connection(self, connection: ConnectionState) -> None:
        with self._connections_lock:
            self._connections.pop(id(connection), None)

    # -- network lifecycle ---------------------------------------------------

    def start(self, host: str = "127.0.0.1", port: int = 0
              ) -> Tuple[str, int]:
        """Bind, serve in the background, start the tailer loop, and
        advertise the address in ``<data_dir>/daemon.json``."""
        if self._server is not None:
            raise ServingError("the replica is already serving")
        self._server = _LineServer((host, port), self)
        bound_host, bound_port = self._server.server_address[:2]
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-replica-daemon",
                                        daemon=True)
        self._thread.start()
        self._stop_event.clear()
        self._poller = threading.Thread(target=self._poll_loop,
                                        name="repro-replica-tailer",
                                        daemon=True)
        self._poller.start()
        address = address_path(self.data_dir)
        temp = address.with_name(address.name + ".tmp")
        temp.write_text(json.dumps({
            "host": bound_host, "port": bound_port, "pid": os.getpid(),
            "kind": self.backend.kind, "role": "replica",
            "protocol_version": PROTOCOL_VERSION,
        }), encoding="utf-8")
        os.replace(temp, address)
        return bound_host, bound_port

    def _poll_loop(self) -> None:
        while not self._stop_event.wait(self.poll_interval):
            try:
                self.poll()
            except Exception as exc:  # noqa: BLE001 - keep tailing
                self.last_error = str(exc)

    def wait(self) -> None:
        """Block until the serving thread exits (stop() from elsewhere)."""
        if self._thread is not None:
            while self._thread.is_alive():
                self._thread.join(timeout=0.5)

    def stop(self) -> None:
        """Stop serving and tailing, releasing every held pin (idempotent)."""
        self._stop_event.set()
        server, self._server = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        poller, self._poller = self._poller, None
        if poller is not None and poller is not threading.current_thread():
            poller.join(timeout=5)
        try:
            address_path(self.data_dir).unlink()
        except OSError:
            pass
        with self._connections_lock:
            connections = list(self._connections.values())
            self._connections.clear()
        for connection in connections:
            connection.release_all()
        with self._lock:
            if self._default_connection is not None:
                self._default_connection.release_all()

    def close(self) -> None:
        self.stop()

    def __enter__(self) -> "ReplicaDaemon":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ReplicaDaemon({self.backend.kind!r}, "
                f"primary={str(self.primary_dir)!r}, "
                f"lsn={self.applied_lsn})")


# ---------------------------------------------------------------------------
# Command line
# ---------------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.replication",
        description="Serve read-only answers off a primary's shipped "
                    "snapshots + WAL segments.")
    parser.add_argument("--primary-data-dir", required=True,
                        help="the primary daemon's data directory (the "
                             "shipped log)")
    parser.add_argument("--data-dir", required=True,
                        help="the replica's own directory (address file); "
                             "must differ from the primary's")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="0 = pick a free port (advertised in "
                             "<data-dir>/daemon.json)")
    parser.add_argument("--program", metavar="FILE",
                        help="verify the shipped snapshots against this "
                             "Datalog± program text (default: trust the "
                             "snapshot)")
    parser.add_argument("--hospital", action="store_true",
                        help="serve the hospital quality session (enables "
                             "the quality_* requests)")
    parser.add_argument("--engine", choices=("indexed", "naive", "columnar"))
    parser.add_argument("--poll-interval", type=float, default=0.05,
                        metavar="SECONDS")
    defaults = AdmissionPolicy()
    parser.add_argument("--max-request-bytes", type=int,
                        default=defaults.max_request_bytes, metavar="N",
                        help="longest accepted protocol line in bytes "
                             "(0 = unlimited)")
    parser.add_argument("--auth-token-file", metavar="FILE",
                        help="require the shared-secret handshake with the "
                             "token read from FILE")
    parser.add_argument("--quiet", action="store_true")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.hospital:
        from ..hospital import HospitalScenario
        scenario = HospitalScenario()
        backend = QualityBackend(scenario.context, engine=args.engine)
    elif args.program:
        text = Path(args.program).read_text(encoding="utf-8")
        backend = ProgramBackend(parse_program(text), engine=args.engine)
    else:
        # Snapshot-authoritative: rules and data both come from the
        # shipped snapshot (load_program reconstructs the rule set).
        backend = ProgramBackend(None, engine=args.engine)
    admission = AdmissionPolicy(max_request_bytes=args.max_request_bytes)
    token = load_token(args.auth_token_file) if args.auth_token_file else None
    replica = ReplicaDaemon(backend, args.primary_data_dir, args.data_dir,
                            poll_interval=args.poll_interval,
                            admission=admission, auth_token=token)
    report = replica.recover()
    replica.poll()
    host, port = replica.start(args.host, args.port)
    if not args.quiet:
        print(f"repro replica ({backend.kind}) on {host}:{port} — seeded at "
              f"LSN {report['base_lsn']}, applied through "
              f"{replica.applied_lsn}; shipping from {replica.primary_dir}",
              flush=True)

    def _stop(_signum, _frame):  # pragma: no cover - signal path
        threading.Thread(target=replica.stop, daemon=True).start()

    signal.signal(signal.SIGTERM, _stop)
    signal.signal(signal.SIGINT, _stop)
    try:
        replica.wait()
    finally:
        replica.stop()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
