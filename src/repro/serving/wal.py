"""Append-only, checksummed write-ahead log of EDB update records.

The serving daemon (:mod:`repro.serving.daemon`) keeps exactly two kinds
of durable artifact: snapshots (:mod:`repro.engine.snapshot`) of the
materialized state at checkpoints, and log **segments** — one
:class:`WriteAheadLog` file per checkpoint interval, named
``wal-<baselsn>.log`` by :mod:`repro.serving.compaction` — holding every
update accepted since.  The recovery invariant is

    snapshot ⊕ WAL replay ≡ live session

— restoring the latest snapshot and replaying the log's durable suffix
reproduces the exact state (ground facts, certain answers, maintained
caches' contents) the daemon would have had if it had never stopped.

File format (version 1)
-----------------------
A UTF-8 text file of frames, one per line.  Each frame is::

    <sha256-hex of body> <body: canonical JSON>\\n

The first frame is the **header**::

    {"base_lsn": L, "format_version": 1, "magic": "repro-wal"}

where ``base_lsn`` is the log sequence number of the checkpoint this log
starts after (its records carry LSNs ``L+1, L+2, ...``, contiguously).
Every other frame is a **record**::

    {"facts": [[predicate, [value, ...]], ...], "lsn": n, "op": "add"}

with ``op`` one of ``"add"``/``"retract"`` and values encoded exactly as
in snapshots (:func:`repro.engine.snapshot.encode_row` — labeled nulls as
``{"n": label}``).

Appends are atomic at the frame level: one ``write`` per frame, flushed
(and fsynced when ``sync=True``) before the record is applied or
acknowledged.  :meth:`WriteAheadLog.append_batch` amortizes the flush and
the fsync over a whole group-commit batch — still one ``write`` per frame,
one fsync per batch.  A crash can therefore damage *only the last line* —
the torn tail.  :meth:`WriteAheadLog.recover` detects it (missing newline,
unparseable frame, checksum mismatch), truncates the file back to the last
durable record and reports what was dropped.  Damage strictly *before* the
tail — a bad frame followed by further valid frames, or a hole in the LSN
sequence — cannot be produced by a crash and means lost updates, so it is
refused with :class:`~repro.errors.WALCorruptionError` instead of being
silently skipped.

Fault injection
---------------
:func:`maybe_crash` implements the crash points the recovery test-suite
drives: when the environment variable ``REPRO_FAULT_CRASH`` is set to
``"<point>:<n>"``, the process dies with ``os._exit`` (no cleanup, no
flushing — a SIGKILL, from the filesystem's point of view) at the n-th
hit of that point.  The special point ``wal-torn`` makes the n-th append
write only half its frame before dying, forging a torn tail.

:func:`maybe_stall` implements the **overload** points the back-pressure
suite drives: ``REPRO_FAULT_STALL="<point>:<seconds>[,<point>:<seconds>...]"``
makes every hit of ``<point>`` sleep, simulating a slow disk or an
expensive apply so a bounded commit queue fills deterministically.
Stall points today: ``group-commit-stall`` (the committer thread, before
it makes a batch durable) and ``checkpoint-stall`` (inside the
write-lock-holding checkpoint).  Stalls compose with crash points —
the overload suite runs the crash matrix under a stalled, flooded queue.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..datalog.chase import Fact
from ..engine.snapshot import decode_row, encode_row, fsync_directory
from ..errors import WALCorruptionError, WALError, WALFormatError

MAGIC = "repro-wal"
FORMAT_VERSION = 1

OP_ADD = "add"
OP_RETRACT = "retract"
OPS = (OP_ADD, OP_RETRACT)

PathLike = Union[str, Path]

#: process-exit status used by injected crashes (distinguishable from
#: ordinary failures in the recovery tests)
FAULT_EXIT_CODE = 70

_FAULT_HITS: Dict[str, int] = {}


def _fault_due(point: str) -> bool:
    """``True`` when the configured injected fault for ``point`` is due."""
    spec = os.environ.get("REPRO_FAULT_CRASH", "")
    if not spec:
        return False
    name, _, count = spec.partition(":")
    if name != point:
        return False
    _FAULT_HITS[point] = _FAULT_HITS.get(point, 0) + 1
    return _FAULT_HITS[point] >= int(count or 1)


def maybe_crash(point: str) -> None:
    """Die like a SIGKILL at ``point`` when fault injection says so."""
    if _fault_due(point):
        os._exit(FAULT_EXIT_CODE)  # pragma: no cover - kills the process


def stall_seconds(point: str) -> float:
    """The configured injected stall for ``point`` (0 = none)."""
    spec = os.environ.get("REPRO_FAULT_STALL", "")
    for part in spec.split(","):
        name, _, seconds = part.partition(":")
        if name == point:
            try:
                return float(seconds or 0)
            except ValueError:
                return 0.0
    return 0.0


def maybe_stall(point: str) -> None:
    """Sleep at ``point`` when overload fault injection says so."""
    seconds = stall_seconds(point)
    if seconds > 0:
        time.sleep(seconds)


# ---------------------------------------------------------------------------
# Frames
# ---------------------------------------------------------------------------


def _canonical(body: Any) -> str:
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _frame(body: Dict[str, Any]) -> str:
    text = _canonical(body)
    return f"{_sha256(text)} {text}\n"


def _parse_frame(line: bytes) -> Optional[Dict[str, Any]]:
    """The frame's body, or ``None`` when the line is not a durable frame."""
    if not line.endswith(b"\n"):
        return None  # torn: the trailing newline is the commit marker
    try:
        text = line[:-1].decode("utf-8")
    except UnicodeDecodeError:
        return None
    checksum, _, body_text = text.partition(" ")
    if len(checksum) != 64 or not body_text:
        return None
    if _sha256(body_text) != checksum:
        return None
    try:
        body = json.loads(body_text)
    except json.JSONDecodeError:  # pragma: no cover - checksum catches first
        return None
    return body if isinstance(body, dict) else None


def encode_facts(facts: Iterable[Fact]) -> List[List[Any]]:
    """``(predicate, row)`` facts in the WAL/wire encoding."""
    return [[predicate, encode_row(row)] for predicate, row in facts]


def decode_facts(encoded: Iterable[List[Any]]) -> List[Fact]:
    """Inverse of :func:`encode_facts`."""
    return [(predicate, decode_row(row)) for predicate, row in encoded]


@dataclass(frozen=True)
class WALRecord:
    """One durable update record."""

    lsn: int
    op: str
    facts: Tuple[Fact, ...]

    def __post_init__(self):
        if self.op not in OPS:
            raise WALFormatError(f"unknown WAL operation {self.op!r}; "
                                 f"expected one of {OPS}")


@dataclass(frozen=True)
class AppendedFrame:
    """Where one just-appended record landed in the log file."""

    lsn: int
    #: byte offset at which the frame starts (``rollback_to(lsn - 1, offset)``
    #: removes this frame and everything after it)
    offset: int


# ---------------------------------------------------------------------------
# Scanning
# ---------------------------------------------------------------------------


@dataclass
class WALScan:
    """The result of scanning a WAL file for durable content."""

    #: header fields (magic, format_version, base_lsn)
    header: Dict[str, Any]
    #: the durable records, in LSN order
    records: List[WALRecord]
    #: byte length of the durable prefix (header + intact records)
    durable_bytes: int
    #: why the tail was considered torn (``None`` = the file is clean)
    torn_reason: Optional[str] = None


def scan_wal(path: PathLike) -> WALScan:
    """Read ``path``, returning its durable prefix and what (if anything)
    is torn at the tail.

    Raises :class:`~repro.errors.WALFormatError` when the file is not a
    WAL at all and :class:`~repro.errors.WALCorruptionError` when damage
    sits *before* further durable records (lost updates)."""
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        raise WALError(f"write-ahead log {path} does not exist") from None
    except OSError as exc:  # pragma: no cover - environment-specific
        raise WALError(f"cannot read write-ahead log {path}: {exc}") from None
    lines = data.splitlines(keepends=True)
    if not lines:
        raise WALFormatError(
            f"{path} is empty — not a write-ahead log (a fresh log always "
            "starts with its header frame)")

    header = _parse_frame(lines[0])
    if header is None or header.get("magic") != MAGIC:
        raise WALFormatError(
            f"{path} is not a repro write-ahead log (missing {MAGIC!r} "
            "header frame)")
    if header.get("format_version") != FORMAT_VERSION:
        raise WALFormatError(
            f"write-ahead log {path} uses format version "
            f"{header.get('format_version')!r}, but this build reads "
            f"version {FORMAT_VERSION}")
    base_lsn = header.get("base_lsn")
    if not isinstance(base_lsn, int):
        raise WALFormatError(f"write-ahead log {path} has no base_lsn")

    records: List[WALRecord] = []
    durable = len(lines[0])
    expected = base_lsn + 1
    for index in range(1, len(lines)):
        line = lines[index]
        body = _parse_frame(line)
        reason: Optional[str] = None
        if body is None:
            reason = ("incomplete frame (no trailing newline)"
                      if not line.endswith(b"\n")
                      else "damaged frame (checksum mismatch or unparseable)")
        elif body.get("lsn") != expected or body.get("op") not in OPS \
                or not isinstance(body.get("facts"), list):
            reason = (f"unexpected record (lsn {body.get('lsn')!r} where "
                      f"{expected} was expected)")
        if reason is not None:
            if any(_parse_frame(rest) is not None
                   for rest in lines[index + 1:]):
                raise WALCorruptionError(
                    f"write-ahead log {path} is damaged before its tail "
                    f"(record {expected}: {reason}, but later records are "
                    "intact); updates are missing — restore from a newer "
                    "snapshot instead of replaying this log")
            return WALScan(header, records, durable, torn_reason=reason)
        records.append(WALRecord(lsn=expected, op=body["op"],
                                 facts=tuple(decode_facts(body["facts"]))))
        durable += len(line)
        expected += 1
    return WALScan(header, records, durable)


# ---------------------------------------------------------------------------
# The log itself
# ---------------------------------------------------------------------------


@dataclass
class WALRecovery:
    """What :meth:`WriteAheadLog.recover` found and did."""

    wal: "WriteAheadLog"
    #: the durable records (replay these, in order, after the snapshot)
    records: List[WALRecord]
    #: why the tail was truncated (``None`` = the log was clean)
    torn_reason: Optional[str] = None
    #: bytes dropped from the torn tail
    truncated_bytes: int = 0


class WriteAheadLog:
    """An open, appendable write-ahead log file."""

    def __init__(self, path: Path, base_lsn: int, last_lsn: int,
                 size_bytes: int, sync: bool, handle=None):
        self.path = path
        self.base_lsn = base_lsn
        self.last_lsn = last_lsn
        self.size_bytes = size_bytes
        self.sync = sync
        self._file = handle if handle is not None else open(path, "ab")

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, path: PathLike, base_lsn: int = 0,
               sync: bool = True) -> "WriteAheadLog":
        """Start a fresh log at ``path`` (atomically replacing any old one).

        The header is written to a temporary file and renamed into place,
        so a crash mid-creation leaves either the previous log or the new
        one — never a headerless fragment.  The append handle is the one
        the temp file was written through (it follows the inode across the
        rename), so *any* failure before the return leaves ``path``
        untouched or fully valid — never a log whose appends would land in
        an unlinked file.
        """
        path = Path(path)
        header = _frame({"magic": MAGIC, "format_version": FORMAT_VERSION,
                         "base_lsn": base_lsn}).encode("utf-8")
        temp = path.with_name(path.name + ".tmp")
        handle = open(temp, "wb")
        try:
            handle.write(header)
            handle.flush()
            if sync:
                os.fsync(handle.fileno())
            os.replace(temp, path)
            if sync:
                fsync_directory(path.parent)
        except BaseException:
            handle.close()
            try:
                temp.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
            raise
        return cls(path, base_lsn=base_lsn, last_lsn=base_lsn,
                   size_bytes=len(header), sync=sync, handle=handle)

    @classmethod
    def recover(cls, path: PathLike, sync: bool = True) -> WALRecovery:
        """Open an existing log, truncating any torn tail back to the last
        durable record, and return the records to replay."""
        path = Path(path)
        scan = scan_wal(path)
        truncated = path.stat().st_size - scan.durable_bytes
        if truncated:
            with open(path, "r+b") as handle:
                handle.truncate(scan.durable_bytes)
                handle.flush()
                if sync:
                    os.fsync(handle.fileno())
        last_lsn = scan.records[-1].lsn if scan.records \
            else scan.header["base_lsn"]
        wal = cls(path, base_lsn=scan.header["base_lsn"], last_lsn=last_lsn,
                  size_bytes=scan.durable_bytes, sync=sync)
        return WALRecovery(wal=wal, records=scan.records,
                           torn_reason=scan.torn_reason,
                           truncated_bytes=truncated)

    # -- appending -----------------------------------------------------------

    def append(self, op: str, facts: Iterable[Fact]) -> int:
        """Durably append one update record; returns its LSN.

        The whole frame goes down in a single ``write`` and is flushed
        (+fsynced when ``sync``) before this method returns — the caller
        applies the update to the in-memory state only after the record is
        durable, so recovery can never know *less* than an acknowledged
        client does.
        """
        return self.append_batch([(op, facts)])[0].lsn

    def append_batch(self, records: Sequence[Tuple[str, Iterable[Fact]]]
                     ) -> List[AppendedFrame]:
        """Durably append several update records with **one** flush and one
        fsync (group commit).

        Every frame is buffered, then the batch is flushed (+fsynced when
        ``sync``) as a unit; no record in the batch is durable before the
        method returns, and the caller must not acknowledge any of them
        earlier.  Returns one :class:`AppendedFrame` per record, in order —
        the start offsets let the caller roll a suffix of the batch back
        out (:meth:`rollback_to`) when an apply fails mid-batch.
        """
        if self._file.closed:
            raise WALError(f"write-ahead log {self.path} is closed")
        frames: List[bytes] = []
        for op, facts in records:
            if op not in OPS:
                raise WALFormatError(f"unknown WAL operation {op!r}; "
                                     f"expected one of {OPS}")
            frames.append(_frame({"lsn": self.last_lsn + len(frames) + 1,
                                  "op": op,
                                  "facts": encode_facts(facts)})
                          .encode("utf-8"))
        if not frames:
            return []
        appended: List[AppendedFrame] = []
        offset = self.size_bytes
        try:
            for index, frame in enumerate(frames):
                if _fault_due("wal-torn"):  # forge a torn tail, then die
                    self._file.write(frame[: max(1, len(frame) // 2)])
                    self._file.flush()
                    os.fsync(self._file.fileno())
                    os._exit(FAULT_EXIT_CODE)  # pragma: no cover - dies
                self._file.write(frame)
                appended.append(AppendedFrame(lsn=self.last_lsn + index + 1,
                                              offset=offset))
                offset += len(frame)
            self._file.flush()
            if self.sync:
                os.fsync(self._file.fileno())
        except OSError as exc:
            # A partial batch may be on disk.  Truncate back to the last
            # durable record so a *later* successful append cannot land
            # after the garbage (which recovery would have to refuse as
            # damage-before-tail, losing everything after it).  If even
            # the repair fails, poison the handle: refusing further
            # appends is strictly better than corrupting the log.
            try:
                self._file.truncate(self.size_bytes)
                self._file.seek(self.size_bytes)
                self._file.flush()
                os.fsync(self._file.fileno())
            except OSError:  # pragma: no cover - disk truly gone
                self._file.close()
            raise WALError(
                f"cannot append to write-ahead log {self.path}: "
                f"{exc}") from exc
        self.last_lsn += len(frames)
        self.size_bytes = offset
        for _ in frames:
            maybe_crash("wal-append")  # durable, not yet applied/acknowledged
        return appended

    def rollback_to(self, lsn: int, size_bytes: int) -> None:
        """Physically remove every record after ``(lsn, size_bytes)``.

        Used by the daemon when a just-appended record turns out to be
        inapplicable (the backend raised): the record was never
        acknowledged, so truncating it away keeps the invariant that every
        durable WAL record replays cleanly — without it, one poisoned
        record would make the data directory permanently unrecoverable.
        """
        if self._file.closed:
            raise WALError(f"write-ahead log {self.path} is closed")
        if size_bytes > self.size_bytes:
            raise WALError(
                f"cannot roll {self.path} forward (to {size_bytes} bytes "
                f"from {self.size_bytes})")
        self._file.flush()
        self._file.truncate(size_bytes)
        self._file.seek(size_bytes)  # the create-path handle is not O_APPEND
        # fsync even when sync=False: under --no-sync an append may leave
        # the rolled-back frames in the OS cache only, but a *subsequent*
        # crash after more (cached) appends must never resurrect them —
        # recovery would replay records the daemon decided to discard.
        os.fsync(self._file.fileno())
        self.last_lsn = lsn
        self.size_bytes = size_bytes

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"WriteAheadLog({str(self.path)!r}, base={self.base_lsn}, "
                f"last={self.last_lsn}, {self.size_bytes}B)")
