"""Admission control and authentication for the serving tier.

The daemon accepts work from the network, and PR 5 left its front door
wide open: any connection could enqueue arbitrarily large writes, the
group-commit queue grew without bound, and the protocol had no notion of
identity.  This module is the protection layer both daemons
(:class:`~repro.serving.daemon.ServingDaemon` and
:class:`~repro.serving.replication.ReplicaDaemon`) consult **before**
validation, logging or application:

* :class:`AdmissionPolicy` — the per-request limits: raw bytes per
  protocol line (enforced at the socket boundary, before JSON parsing,
  so an oversized request is drained and refused in bounded memory),
  facts per write, concurrent in-flight writes per connection, and the
  commit-queue capacity behind the back-pressure path.  A refused
  request raises a **typed** error
  (:class:`~repro.errors.RequestTooLargeError`,
  :class:`~repro.errors.ServerBusyError`) that the wire protocol carries
  as ``error_type`` and :class:`~repro.serving.client.ServingClient`
  re-raises as the same class — callers distinguish "too big" from
  "try again later" without string matching.
* :class:`Authenticator` — the shared-secret handshake.  The daemon
  issues a random per-connection nonce (``auth_challenge``); the client
  answers with ``HMAC-SHA256(token, nonce)`` (``auth``); the daemon
  verifies in constant time (:func:`hmac.compare_digest`) and marks the
  connection authenticated.  Nonces are single-use: a replayed MAC —
  on the same connection or captured from another — never verifies,
  because the nonce it signed has been consumed.  The token itself
  never crosses the wire.

Nothing here imports the daemon modules, so the client can share
:func:`compute_mac` without a circular import.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from ..errors import RequestTooLargeError, ServingError

PathLike = Union[str, Path]

#: handshake and liveness operations that must work before authentication
#: (everything else is refused on an unauthenticated connection)
UNAUTHENTICATED_OPS = ("ping", "auth_challenge", "auth")


@dataclass
class AdmissionPolicy:
    """Per-request admission limits for a serving daemon.

    The defaults are deliberately generous — far above anything the
    benchmarks or the differential suites send — so protection is on by
    default without changing the behavior of well-formed clients.  A
    limit set to ``0`` disables that check.
    """

    #: longest accepted protocol line (request JSON + newline), in bytes;
    #: longer lines are drained and refused before parsing
    max_request_bytes: int = 8 * 1024 * 1024
    #: most facts one ``add_facts``/``retract_facts`` request may carry
    max_facts_per_write: int = 50_000
    #: most writes one connection may have queued/in flight at once
    max_inflight_per_connection: int = 8
    #: commit-queue capacity: writers arriving past it get a typed
    #: ``busy`` refusal with a retry-after hint instead of enqueueing
    queue_cap: int = 256

    def check_facts(self, count: int) -> None:
        """Refuse a write that carries more facts than the policy allows."""
        if self.max_facts_per_write and count > self.max_facts_per_write:
            raise RequestTooLargeError(
                f"write carries {count} facts but this daemon admits at "
                f"most {self.max_facts_per_write} per request; split the "
                "update into smaller batches")


def load_token(path: PathLike) -> bytes:
    """Read a shared-secret token file (surrounding whitespace stripped)."""
    try:
        token = Path(path).read_bytes().strip()
    except OSError as exc:
        raise ServingError(f"cannot read auth token file {path}: "
                           f"{exc}") from None
    if not token:
        raise ServingError(f"auth token file {path} is empty; a blank "
                           "token would authenticate everyone")
    return token


def compute_mac(token: Union[str, bytes], nonce: str) -> str:
    """The handshake response: ``HMAC-SHA256(token, nonce)`` as hex."""
    if isinstance(token, str):
        token = token.encode("utf-8")
    return hmac.new(token, nonce.encode("ascii"), hashlib.sha256).hexdigest()


class Authenticator:
    """Issue per-connection nonces and verify HMAC responses.

    Constructed with ``token=None`` the gate is open (``required`` is
    false) and every connection counts as authenticated — the
    compatibility mode for data directories that predate auth.
    """

    def __init__(self, token: Optional[Union[str, bytes]] = None):
        if isinstance(token, str):
            token = token.encode("utf-8")
        self._token = token

    @classmethod
    def from_file(cls, path: Optional[PathLike]) -> "Authenticator":
        return cls(load_token(path) if path is not None else None)

    @property
    def required(self) -> bool:
        return self._token is not None

    def challenge(self) -> str:
        """A fresh single-use nonce for one connection's handshake."""
        return secrets.token_hex(32)

    def verify(self, nonce: Optional[str], mac: object) -> bool:
        """Constant-time check of one handshake response.

        ``nonce`` is the outstanding challenge (``None`` when none was
        issued or it was already consumed — both refuse).  The caller
        must treat the nonce as consumed whatever the outcome."""
        if self._token is None:
            return True
        if nonce is None or not isinstance(mac, str):
            return False
        return hmac.compare_digest(compute_mac(self._token, nonce), mac)
