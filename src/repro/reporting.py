"""Human-readable reports: text and Markdown renderings of analysis results.

The examples and the benchmark harness produce several structured results —
ontology analyses, validation reports, quality assessments, clean-answer
comparisons.  This module renders them as aligned text tables or Markdown,
so scripts can drop them straight into logs, notebooks or EXPERIMENTS-style
documents.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

from .engine.stats import EngineStats
from .md.validation import ValidationReport
from .ontology.analysis import OntologyAnalysis
from .quality.assessment import DatabaseAssessment
from .quality.cleaning import CleanAnswerComparison
from .relational.instance import Relation


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 markdown: bool = False) -> str:
    """Render ``rows`` under ``headers`` as an aligned text or Markdown table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(values: Sequence[str]) -> str:
        padded = [value.ljust(widths[index]) for index, value in enumerate(values)]
        return "| " + " | ".join(padded) + " |" if markdown else "  ".join(padded)

    separator = (
        "|" + "|".join("-" * (width + 2) for width in widths) + "|"
        if markdown else "-" * (sum(widths) + 2 * (len(widths) - 1))
    )
    output = [line(list(headers)), separator]
    output.extend(line(row) for row in cells)
    return "\n".join(output)


def render_relation(relation: Relation, markdown: bool = False,
                    limit: Optional[int] = None) -> str:
    """Render a relation (sorted, optionally truncated) as a table."""
    rows = relation.sorted_rows()
    if limit is not None:
        rows = rows[:limit]
    return render_table(relation.schema.attributes, rows, markdown=markdown)


def render_analysis(analysis: OntologyAnalysis, markdown: bool = False) -> str:
    """Render an ontology analysis (class membership, separability, directions)."""
    summary_rows = [(key, value) for key, value in analysis.summary().items()]
    parts = [render_table(("property", "value"), summary_rows, markdown=markdown)]
    if analysis.rule_directions:
        direction_rows = sorted(analysis.rule_directions.items())
        parts.append(render_table(("rule", "navigation"), direction_rows,
                                  markdown=markdown))
    if analysis.notes:
        parts.append("\n".join(f"- {note}" for note in analysis.notes))
    return "\n\n".join(parts)


def render_validation(report: ValidationReport, markdown: bool = False) -> str:
    """Render an MD-model validation report."""
    if report.is_valid:
        return "validation passed: no issues"
    rows = [(issue.kind, issue.dimension or "-", issue.subject, issue.detail)
            for issue in report.issues]
    return render_table(("kind", "dimension", "subject", "detail"), rows,
                        markdown=markdown)


def render_assessment(assessment: DatabaseAssessment, markdown: bool = False) -> str:
    """Render a database quality assessment, one row per relation."""
    headers = ("relation", "stored", "quality", "kept", "missing",
               "quality ratio", "departure")
    rows = [
        (entry["relation"], entry["total_tuples"], entry["quality_tuples"],
         entry["kept_tuples"], entry["missing_tuples"],
         f"{entry['quality_ratio']:.3f}", entry["departure"])
        for entry in assessment.as_rows()
    ]
    rows.append(("TOTAL", "", "", "", "", f"{assessment.quality_ratio:.3f}",
                 assessment.departure))
    return render_table(headers, rows, markdown=markdown)


def render_comparison(comparison: CleanAnswerComparison, markdown: bool = False) -> str:
    """Render a direct-vs-quality answer comparison."""
    rows = []
    quality = set(comparison.quality)
    for row in comparison.direct:
        rows.append((str(row), "yes" if row in quality else "no"))
    for row in comparison.quality:
        if row not in set(comparison.direct):
            rows.append((str(row), "quality only"))
    table = render_table(("answer", "quality?"), rows, markdown=markdown)
    summary = (f"direct: {len(comparison.direct)}, quality: {len(comparison.quality)}, "
               f"spurious: {len(comparison.spurious)}, precision: {comparison.precision:.2f}")
    return f"{table}\n\n{summary}"


def render_engine_stats(stats: EngineStats, markdown: bool = False) -> str:
    """Render the engine instrumentation of a run (e.g. ``ChaseResult.stats``).

    The counters come from the shared matching engine: rows actually
    scanned, index probes, triggers fired, fixpoint rounds, rule evaluations
    skipped by the delta discipline, rows rewritten by EGD merges, and the
    columnar path's batch counters (``batch_joins``, ``rows_batch_scanned``,
    ``codegen_cache_hits``) plus the session layer's support-count
    evictions — every :class:`EngineStats` field renders automatically.
    """
    return render_table(("counter", "value"), list(stats.as_dict().items()),
                        markdown=markdown)


def render_key_values(data: Mapping[str, Any], markdown: bool = False) -> str:
    """Render a flat mapping as a two-column table."""
    return render_table(("key", "value"), sorted(data.items()), markdown=markdown)
