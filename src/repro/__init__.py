"""repro — multidimensional ontological contexts for data quality assessment.

A from-scratch reproduction of *"Extending Contexts with Ontologies for
Multidimensional Data Quality Assessment"* (Milani, Bertossi & Ariyan,
arXiv:1312.7373 / 2014).  The library provides:

* :mod:`repro.relational` — an in-memory relational substrate (schemas,
  instances with on-demand hash indexes, algebra, pattern queries, labeled
  nulls, CSV I/O);
* :mod:`repro.engine` — the shared evaluation engine: indexed atom matching
  with selectivity-ordered joins, the naive reference matcher, and the
  :class:`~repro.engine.stats.EngineStats` instrumentation threaded through
  every evaluator (see ``docs/ARCHITECTURE.md``);
* :mod:`repro.datalog` — a Datalog± engine: TGDs/EGDs/negative constraints,
  the chase, syntactic class analysis (linear, guarded, sticky, weakly
  sticky, weakly acyclic), EGD separability, certain-answer query answering,
  the deterministic weakly-sticky algorithm of Section IV, and first-order
  query rewriting;
* :mod:`repro.md` — the extended Hurtado-Mendelzon multidimensional model
  (dimensions, categorical relations, navigation, validation);
* :mod:`repro.ontology` — MD ontologies in Datalog± (the paper's core
  contribution): dimensional rules/constraints of forms (1)-(4) and (10),
  compilation, weak-stickiness and separability certification, query
  answering with dimensional navigation;
* :mod:`repro.quality` — contexts, quality predicates, quality versions,
  clean query answering and quality measures (Section V);
* :mod:`repro.hospital` — the paper's running example, end to end;
* :mod:`repro.workloads` — synthetic multidimensional workload generators
  used by the benchmark harness.
"""

from . import datalog, engine, errors, md, ontology, quality, relational, reporting

__version__ = "0.1.0"

__all__ = [
    "datalog",
    "engine",
    "errors",
    "md",
    "ontology",
    "quality",
    "relational",
    "reporting",
    "__version__",
]
