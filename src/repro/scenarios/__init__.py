"""Scenario registry: every packaged quality-assessment domain, one API.

The hospital running example (:mod:`repro.hospital`), the sensor network
(:mod:`repro.sensornet`) and the financial-compliance domain
(:mod:`repro.fincompliance`) each package an MD instance, an ontology, a
quality context and an instance under assessment.  This module gives them
one execution surface — :class:`QualityScenarioBase` — so the workload
driver, the serving daemon (``--scenario``) and the differential suites
can run any of them interchangeably:

* a lazily materialized :meth:`~QualityScenarioBase.session` with
  incremental :meth:`~QualityScenarioBase.record_rows` /
  :meth:`~QualityScenarioBase.remove_rows` feeds;
* :meth:`~QualityScenarioBase.save_session` /
  :meth:`~QualityScenarioBase.restore_session` snapshot hooks;
* a :meth:`~QualityScenarioBase.serving_backend` for
  :class:`~repro.serving.daemon.ServingDaemon`;
* the traffic-compiler contract — :meth:`~QualityScenarioBase.queries`,
  :meth:`~QualityScenarioBase.quality_queries`,
  :meth:`~QualityScenarioBase.fresh_assessed_row`,
  :meth:`~QualityScenarioBase.binding` — consumed by
  :mod:`repro.workloads.driver`;
* :meth:`~QualityScenarioBase.update_stream` for the differential suites.

``build_scenario("sensornet")`` constructs by name; :data:`SCENARIO_NAMES`
is the CLI-facing list.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..engine.session import UpdateResult
from ..quality.session import QualitySession


class QualityScenarioBase:
    """A packaged quality-assessment domain, ready to execute.

    Subclasses call ``super().__init__(md, ontology, context, instance)``
    with their built pieces, set :attr:`name` / :attr:`assessed_relation`,
    and implement the traffic-compiler contract (:meth:`queries`,
    :meth:`quality_queries`, :meth:`fresh_assessed_row`).
    """

    #: registry name (also the daemon's ``--scenario`` argument)
    name: str = "scenario"
    #: the relation under assessment (the one live updates target)
    assessed_relation: str = ""

    def __init__(self, md, ontology, context, instance):
        self.md = md
        self.ontology = ontology
        self.context = context
        self.instance = instance
        self._session: Optional[QualitySession] = None

    # -- execution ---------------------------------------------------------

    def session(self) -> QualitySession:
        """The scenario's long-lived quality session (chased once, reused)."""
        if self._session is None:
            self._session = self.context.session(self.instance)
        return self._session

    def record_rows(self, rows: Iterable[Sequence]) -> UpdateResult:
        """Record new assessed-relation tuples (incremental)."""
        update = self.session().add_facts(self.assessed_relation, rows)
        for _, row in update.applied:
            self.instance.add(self.assessed_relation, row)
        return update

    def remove_rows(self, rows: Iterable[Sequence]) -> UpdateResult:
        """Retract assessed-relation tuples (provenance-driven deletion)."""
        update = self.session().retract_facts(self.assessed_relation, rows)
        for _, row in update.applied:
            self.instance.relation(self.assessed_relation).discard(row)
        return update

    # -- persistence -------------------------------------------------------

    def save_session(self, path: Union[str, Path]) -> Path:
        """Snapshot the live quality session (materialization + data)."""
        return self.session().save(path)

    def restore_session(self, path: Union[str, Path]) -> QualitySession:
        """Restore a session saved by :meth:`save_session`; the scenario's
        ``instance`` copy is re-synchronized from the persisted one."""
        self._session = QualitySession.load(self.context, path)
        self.instance = self._session.instance.copy()
        return self._session

    # -- serving -----------------------------------------------------------

    def serving_backend(self, engine: Optional[str] = None):
        """A serving-daemon backend over this scenario's quality context."""
        from ..serving.daemon import QualityBackend
        return QualityBackend(self.context, self.instance, engine=engine)

    # -- traffic-compiler contract -----------------------------------------

    def queries(self) -> List[str]:
        """Plain (certain-answer) queries the driver's query/holds ops draw
        from; every one must be answerable by the served program."""
        raise NotImplementedError

    def quality_queries(self) -> List[str]:
        """Queries over the assessed relation for quality-answer ops."""
        raise NotImplementedError

    def fresh_assessed_row(self, rng: random.Random, index: int) -> Tuple:
        """One new assessed-relation row; must be deterministic in
        ``(rng state, index)`` so compiled schedules are reproducible."""
        raise NotImplementedError

    def initial_rows(self) -> List[Tuple]:
        """The assessed relation's current rows, deterministically ordered
        (the driver seeds its retract pool from this)."""
        return sorted(self.instance.relation(self.assessed_relation).rows(),
                      key=repr)

    def binding(self):
        """This scenario as a :class:`~repro.workloads.driver.ScenarioBinding`."""
        from ..workloads.driver import ScenarioBinding
        return ScenarioBinding(
            relation=self.assessed_relation,
            queries=tuple(self.queries()),
            quality_queries=tuple(self.quality_queries()),
            initial_rows=tuple(self.initial_rows()),
            fresh_row=self.fresh_assessed_row)

    # -- update streams ----------------------------------------------------

    def update_stream(self, steps: int = 10, adds_per_step: int = 2,
                      retracts_per_step: int = 1, seed: int = 0):
        """A deterministic add/retract stream against the assessed relation
        (same vocabulary as :func:`~repro.workloads.updates.generate_update_stream`);
        retracted rows always exist at their point in the stream."""
        from ..workloads.generator import derive_rng
        from ..workloads.updates import UpdateStep
        rng = derive_rng(random.Random(seed), f"scenario-updates:{self.name}")
        current = list(self.initial_rows())
        stream: List[UpdateStep] = []
        counter = 0
        for _ in range(steps):
            batch = UpdateStep()
            for _ in range(adds_per_step):
                row = self.fresh_assessed_row(rng, counter)
                counter += 1
                batch.adds.append((self.assessed_relation, row))
                current.append(row)
            for _ in range(min(retracts_per_step, max(0, len(current) - 1))):
                victim = current.pop(rng.randrange(len(current)))
                batch.retracts.append((self.assessed_relation, victim))
            stream.append(batch)
        return stream

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"


#: scenario names accepted by ``build_scenario`` and the daemon CLI
SCENARIO_NAMES = ("hospital", "sensornet", "fincompliance")


def build_scenario(name: str, **options) -> QualityScenarioBase:
    """Construct a registered scenario by name (extra keyword arguments
    pass through to the scenario constructor, e.g. a size spec)."""
    if name == "hospital":
        from .hospital_adapter import HospitalQualityScenario
        return HospitalQualityScenario(**options)
    if name == "sensornet":
        from ..sensornet.scenario import SensorNetworkScenario
        return SensorNetworkScenario(**options)
    if name == "fincompliance":
        from ..fincompliance.scenario import FinancialComplianceScenario
        return FinancialComplianceScenario(**options)
    raise ValueError(
        f"unknown scenario {name!r}; known: {', '.join(SCENARIO_NAMES)}")
