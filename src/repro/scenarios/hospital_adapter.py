"""The hospital running example behind the generic scenario API.

:class:`~repro.hospital.scenario.HospitalScenario` predates the scenario
registry and keeps its paper-faithful surface (doctor's query helpers,
Table II expectations); this adapter re-packages the same built pieces —
ontology, context, Table I — as a :class:`~repro.scenarios.QualityScenarioBase`
so the workload driver and the daemon's ``--scenario hospital`` run the
identical domain the in-process examples do.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..hospital.dimensions import TIME_TO_DAY
from ..hospital.scenario import DOCTOR_QUERY, HospitalScenario
from . import QualityScenarioBase

#: a small rotating patient pool for freshly recorded measurements
_PATIENTS = ("Tom Waits", "Lou Reed", "Nick Cave", "Patti Smith")


class HospitalQualityScenario(QualityScenarioBase):
    """The paper's running example as a registry scenario."""

    name = "hospital"
    assessed_relation = "Measurements"

    def __init__(self, **options):
        source = HospitalScenario(**options)
        super().__init__(md=source.md, ontology=source.ontology,
                         context=source.context,
                         instance=source.measurements)
        self._times = sorted(TIME_TO_DAY)

    def queries(self) -> List[str]:
        return [
            "?(D) :- Shifts('W1', D, 'Mark', S).",
            "?(U, D, P) :- PatientUnit(U, D, P).",
            "?(W, D, N) :- Shifts(W, D, N, S).",
            "?(T, V) :- Measurements(T, 'Tom Waits', V).",
        ]

    def quality_queries(self) -> List[str]:
        return [
            DOCTOR_QUERY,
            "?(T, P, V) :- Measurements(T, P, V).",
        ]

    def fresh_assessed_row(self, rng: random.Random, index: int) -> Tuple:
        return (rng.choice(self._times),
                _PATIENTS[index % len(_PATIENTS)],
                round(36.0 + 3.0 * rng.random(), 1))
