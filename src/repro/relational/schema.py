"""Relation and database schemas.

A :class:`RelationSchema` is a relation name plus an ordered list of
attribute names; a :class:`DatabaseSchema` is a named collection of relation
schemas.  Schemas are immutable value objects: the rest of the library
(instances, the Datalog± engine, the MD model) treats them as keys and never
mutates them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple

from ..errors import ArityError, DuplicateRelationError, SchemaError, UnknownRelationError


@dataclass(frozen=True)
class RelationSchema:
    """Schema of a single relation: a name and an ordered attribute tuple.

    Attributes must be unique within a relation.  Equality and hashing are
    structural, so two schemas with the same name and attributes are
    interchangeable.
    """

    name: str
    attributes: Tuple[str, ...]

    def __init__(self, name: str, attributes: Sequence[str]):
        if not name:
            raise SchemaError("relation name must be a non-empty string")
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        if len(set(attrs)) != len(attrs):
            raise SchemaError(f"relation {name!r} has duplicate attributes: {attrs}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", attrs)

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attributes)

    def position_of(self, attribute: str) -> int:
        """Return the 0-based position of ``attribute``.

        Raises :class:`SchemaError` if the attribute does not exist.
        """
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}; "
                f"known attributes: {self.attributes}"
            ) from None

    def has_attribute(self, attribute: str) -> bool:
        """Return ``True`` if the relation has an attribute of that name."""
        return attribute in self.attributes

    def check_arity(self, values: Sequence) -> None:
        """Raise :class:`ArityError` unless ``values`` matches the arity."""
        if len(values) != self.arity:
            raise ArityError(
                f"relation {self.name!r} has arity {self.arity}, "
                f"got {len(values)} values: {tuple(values)!r}"
            )

    def rename(self, new_name: str) -> "RelationSchema":
        """Return a copy of this schema under a different relation name."""
        return RelationSchema(new_name, self.attributes)

    def project(self, attributes: Sequence[str], name: Optional[str] = None) -> "RelationSchema":
        """Return the schema obtained by keeping only ``attributes``."""
        for attribute in attributes:
            if attribute not in self.attributes:
                raise SchemaError(
                    f"cannot project {self.name!r} on unknown attribute {attribute!r}"
                )
        return RelationSchema(name or self.name, tuple(attributes))

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)})"


class DatabaseSchema:
    """A named collection of relation schemas.

    Supports registration, lookup by name, iteration in insertion order and
    structural equality.  Lookup is case-sensitive.
    """

    def __init__(self, relations: Iterable[RelationSchema] = ()):
        self._relations: Dict[str, RelationSchema] = {}
        for relation in relations:
            self.add(relation)

    def add(self, relation: RelationSchema) -> RelationSchema:
        """Register ``relation``; reject duplicates with a different shape.

        Re-adding an identical schema is a no-op (idempotent), which makes it
        convenient for compilers that assemble schemas from several sources.
        """
        existing = self._relations.get(relation.name)
        if existing is not None:
            if existing == relation:
                return existing
            raise DuplicateRelationError(
                f"relation {relation.name!r} already registered with attributes "
                f"{existing.attributes}, cannot re-register with {relation.attributes}"
            )
        self._relations[relation.name] = relation
        return relation

    def declare(self, name: str, attributes: Sequence[str]) -> RelationSchema:
        """Create and register a relation schema in one step."""
        return self.add(RelationSchema(name, attributes))

    def get(self, name: str) -> RelationSchema:
        """Return the schema registered under ``name``.

        Raises :class:`UnknownRelationError` when absent.
        """
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(
                f"unknown relation {name!r}; known relations: {sorted(self._relations)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def names(self) -> Tuple[str, ...]:
        """Relation names, in registration order."""
        return tuple(self._relations)

    def copy(self) -> "DatabaseSchema":
        """Return a shallow copy (schemas themselves are immutable)."""
        return DatabaseSchema(self._relations.values())

    def merge(self, other: "DatabaseSchema") -> "DatabaseSchema":
        """Return a new schema containing relations of both operands.

        Conflicting declarations (same name, different attributes) raise
        :class:`DuplicateRelationError`.
        """
        merged = self.copy()
        for relation in other:
            merged.add(relation)
        return merged

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseSchema):
            return NotImplemented
        return dict(self._relations) == dict(other._relations)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(str(r) for r in self)
        return f"DatabaseSchema({inner})"
