"""Interned-int column storage mirrored onto relations.

A :class:`ColumnStore` is the columnar face of one
:class:`~repro.relational.instance.Relation`: the same tuples, kept as one
``array('q')`` of :class:`~repro.relational.values.ValueCatalog` codes per
attribute position.  The batch join kernels of
:mod:`repro.engine.columnar` operate on these code columns — probing a
cached *group index* (code key → row slots), then gathering whole columns
at once — instead of matching tuple-at-a-time through Python dicts.

Stores are built **lazily** on first columnar access (a relation that is
never matched by the columnar engine pays nothing, and snapshot restores
that assign rows wholesale rebuild columns on first use) and from then on
maintained incrementally by ``Relation.add``/``discard``.  Deletion uses
swap-remove so the columns stay dense; every mutation bumps a generation
counter that invalidates the cached numpy views and group indexes.

numpy is **optional**: when importable (and not disabled via the
``REPRO_NO_NUMPY`` environment variable) columns are additionally exposed
as cached ``int64`` ndarrays and the kernels vectorize; otherwise the same
kernels run over plain Python lists.  Both paths are exercised by the
columnar differential suite.
"""

from __future__ import annotations

import os
from array import array
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .values import value_catalog

if os.environ.get("REPRO_NO_NUMPY") == "1":
    _np = None
else:
    try:
        import numpy as _np
    except Exception:  # pragma: no cover - depends on the environment
        _np = None


def have_numpy() -> bool:
    """``True`` when the vectorized (numpy) kernel path is active."""
    return _np is not None


Row = Tuple[Any, ...]


class ColumnStore:
    """Dense code columns over one relation's tuples (see module docstring)."""

    __slots__ = ("arity", "_columns", "_rows", "_pos", "generation",
                 "_np_columns", "_np_generation", "_groups")

    def __init__(self, arity: int):
        self.arity = arity
        #: one array('q') of catalog codes per attribute position
        self._columns: List[array] = [array("q") for _ in range(arity)]
        #: slot -> row (parallel to the columns)
        self._rows: List[Row] = []
        #: row -> slot (drives swap-remove deletion)
        self._pos: Dict[Row, int] = {}
        #: bumped on every mutation; invalidates caches derived from columns
        self.generation = 0
        self._np_columns: Optional[list] = None
        self._np_generation = -1
        #: positions tuple -> {code key -> slot list/array} (generation-cached)
        self._groups: Dict[Tuple[int, ...], Dict[Any, Sequence[int]]] = {}

    @classmethod
    def build(cls, arity: int, rows: Iterable[Row]) -> "ColumnStore":
        """Encode ``rows`` into a fresh store (bulk path, no invalidation)."""
        store = cls(arity)
        code = value_catalog().code
        columns = store._columns
        slot_of = store._pos
        slots = store._rows
        for row in rows:
            slot_of[row] = len(slots)
            slots.append(row)
            for position in range(arity):
                columns[position].append(code(row[position]))
        return store

    # -- mutation (driven by Relation.add/discard) ---------------------------

    def append(self, row: Row) -> None:
        """Append one (guaranteed-new) row's codes."""
        code = value_catalog().code
        self._pos[row] = len(self._rows)
        self._rows.append(row)
        for position, column in enumerate(self._columns):
            column.append(code(row[position]))
        self._invalidate()

    def discard(self, row: Row) -> None:
        """Swap-remove one (guaranteed-present) row, keeping columns dense."""
        slot = self._pos.pop(row)
        last = len(self._rows) - 1
        if slot != last:
            moved = self._rows[last]
            self._rows[slot] = moved
            self._pos[moved] = slot
            for column in self._columns:
                column[slot] = column[last]
        self._rows.pop()
        for column in self._columns:
            column.pop()
        self._invalidate()

    def _invalidate(self) -> None:
        self.generation += 1
        self._np_columns = None
        if self._groups:
            self._groups.clear()

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def column(self, position: int) -> array:
        """The raw code column at ``position`` (treat as read-only)."""
        return self._columns[position]

    def np_columns(self) -> list:
        """All columns as cached ``int64`` ndarrays (numpy path only)."""
        if self._np_generation != self.generation or self._np_columns is None:
            # np.array (not asarray): a buffer-protocol *view* over the
            # array('q') would lock it against resizing appends.
            self._np_columns = [_np.array(column, dtype=_np.int64)
                                for column in self._columns]
            self._np_generation = self.generation
        return self._np_columns

    def group_index(self, positions: Tuple[int, ...]) -> Dict[Any, Sequence[int]]:
        """Code key at ``positions`` → slots carrying it (generation-cached).

        The columnar analogue of ``Relation.index_on``: one dict probe per
        binding row answers "which stored rows agree with these codes".
        Keys are a bare int for single-position indexes, a code tuple
        otherwise; slot buckets are ``int64`` ndarrays on the numpy path
        (ready for fancy-index gathers) and plain lists on the fallback.
        """
        groups = self._groups.get(positions)
        if groups is None:
            groups = {}
            if len(positions) == 1:
                for slot, code in enumerate(self._columns[positions[0]]):
                    bucket = groups.get(code)
                    if bucket is None:
                        groups[code] = [slot]
                    else:
                        bucket.append(slot)
            else:
                columns = [self._columns[p] for p in positions]
                for slot, key in enumerate(zip(*columns)):
                    bucket = groups.get(key)
                    if bucket is None:
                        groups[key] = [slot]
                    else:
                        bucket.append(slot)
            if _np is not None:
                groups = {key: _np.asarray(bucket, dtype=_np.int64)
                          for key, bucket in groups.items()}
            self._groups[positions] = groups
        return groups

    def copy(self) -> "ColumnStore":
        """An independent copy (C-level array/dict duplication)."""
        clone = ColumnStore(self.arity)
        clone._columns = [array("q", column) for column in self._columns]
        clone._rows = list(self._rows)
        clone._pos = dict(self._pos)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ColumnStore(arity={self.arity}, rows={len(self._rows)}, "
                f"generation={self.generation})")
