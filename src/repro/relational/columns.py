"""Interned-int column storage mirrored onto relations.

A :class:`ColumnStore` is the columnar face of one
:class:`~repro.relational.instance.Relation`: the same tuples, kept as one
``array('q')`` of :class:`~repro.relational.values.ValueCatalog` codes per
attribute position.  The batch join kernels of
:mod:`repro.engine.columnar` operate on these code columns — probing a
cached *group index* (code key → row slots), then gathering whole columns
at once — instead of matching tuple-at-a-time through Python dicts.

Stores are built **lazily** on first columnar access (a relation that is
never matched by the columnar engine pays nothing, and snapshot restores
that assign rows wholesale rebuild columns on first use) and from then on
maintained incrementally by ``Relation.add``/``discard``/``add_many``.
Deletion uses swap-remove so the columns stay dense; every mutation bumps a
generation counter that invalidates the cached numpy views.

Group indexes are maintained by **delta merge**, not invalidation: an
append (single or bulk via :meth:`ColumnStore.extend`) inserts the new
slots into the already-built buckets, and a swap-remove discard patches
exactly the two touched buckets.  The chase relies on this — every round
bulk-inserts derived facts into relations whose group indexes the next
round's joins probe again, and rebuilding them per round would make the
batched trigger path O(data) instead of O(delta).  Each merge is counted
process-wide (:func:`index_delta_merge_count`) so evaluators can report
``index_delta_merges`` in their stats.

numpy is **optional**: when importable (and not disabled via the
``REPRO_NO_NUMPY`` environment variable) columns are additionally exposed
as cached ``int64`` ndarrays, bucket lookups yield cached ``int64`` slot
arrays, and the kernels vectorize; otherwise the same kernels run over
plain Python lists.  Both paths are exercised by the columnar differential
suite.
"""

from __future__ import annotations

import os
from array import array
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .values import value_catalog

if os.environ.get("REPRO_NO_NUMPY") == "1":
    _np = None
else:
    try:
        import numpy as _np
    except Exception:  # pragma: no cover - depends on the environment
        _np = None


def have_numpy() -> bool:
    """``True`` when the vectorized (numpy) kernel path is active."""
    return _np is not None


#: process-wide count of group-index delta merges (incremental updates of
#: an already-built index, where the pre-PR store invalidated and rebuilt);
#: evaluators sample it before/after a run to report ``index_delta_merges``
_INDEX_DELTA_MERGES = 0


def index_delta_merge_count() -> int:
    """The process-wide group-index delta-merge counter (monotone)."""
    return _INDEX_DELTA_MERGES


Row = Tuple[Any, ...]


class _GroupIndex:
    """One maintained group index: code key → slots carrying it.

    The canonical buckets are plain lists (cheap to patch incrementally);
    on the numpy path :meth:`get` hands out a cached ``int64`` ndarray per
    bucket — the join kernels gather through fancy indexing — and the
    mutation hooks drop exactly the touched keys' cached arrays.
    """

    __slots__ = ("_buckets", "_arrays")

    def __init__(self, buckets: Dict[Any, List[int]]):
        self._buckets = buckets
        self._arrays: Dict[Any, Any] = {}

    def get(self, key: Any, default: Any = None) -> Any:
        bucket = self._buckets.get(key)
        if bucket is None:
            return default
        if _np is None:
            return bucket
        cached = self._arrays.get(key)
        if cached is None:
            cached = _np.asarray(bucket, dtype=_np.int64)
            self._arrays[key] = cached
        return cached

    def __getitem__(self, key: Any) -> Any:
        found = self.get(key)
        if found is None:
            raise KeyError(key)
        return found

    def __contains__(self, key: Any) -> bool:
        return key in self._buckets

    def __iter__(self):
        return iter(self._buckets)

    def __len__(self) -> int:
        return len(self._buckets)

    # -- delta maintenance (driven by the owning ColumnStore) ----------------

    def _add(self, key: Any, slot: int) -> None:
        bucket = self._buckets.get(key)
        if bucket is None:
            self._buckets[key] = [slot]
        else:
            bucket.append(slot)
        self._arrays.pop(key, None)

    def _remove(self, key: Any, slot: int) -> None:
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        try:
            bucket.remove(slot)
        except ValueError:
            return
        if bucket:
            self._arrays.pop(key, None)
        else:
            del self._buckets[key]
            self._arrays.pop(key, None)

    def _relocate(self, key: Any, old_slot: int, new_slot: int) -> None:
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        try:
            bucket[bucket.index(old_slot)] = new_slot
        except ValueError:
            return
        self._arrays.pop(key, None)


def _group_key(codes: Sequence[int], positions: Tuple[int, ...]) -> Any:
    """The bucket key of one row's codes under a positions index."""
    if len(positions) == 1:
        return codes[positions[0]]
    return tuple(codes[p] for p in positions)


class ColumnStore:
    """Dense code columns over one relation's tuples (see module docstring)."""

    __slots__ = ("arity", "_columns", "_rows", "_pos", "generation",
                 "_np_columns", "_np_generation", "_groups")

    def __init__(self, arity: int):
        self.arity = arity
        #: one array('q') of catalog codes per attribute position
        self._columns: List[array] = [array("q") for _ in range(arity)]
        #: slot -> row (parallel to the columns)
        self._rows: List[Row] = []
        #: row -> slot (drives swap-remove deletion)
        self._pos: Dict[Row, int] = {}
        #: bumped on every mutation; invalidates caches derived from columns
        self.generation = 0
        self._np_columns: Optional[list] = None
        self._np_generation = -1
        #: positions tuple -> maintained group index (delta-merged, not
        #: rebuilt: see module docstring)
        self._groups: Dict[Tuple[int, ...], _GroupIndex] = {}

    @classmethod
    def build(cls, arity: int, rows: Iterable[Row]) -> "ColumnStore":
        """Encode ``rows`` into a fresh store (bulk path, no invalidation)."""
        store = cls(arity)
        code = value_catalog().code
        columns = store._columns
        slot_of = store._pos
        slots = store._rows
        for row in rows:  # per-tuple: ok — one-time bulk encode of a fresh store
            slot_of[row] = len(slots)
            slots.append(row)
            for position in range(arity):
                columns[position].append(code(row[position]))
        return store

    # -- mutation (driven by Relation.add/discard/add_many) ------------------

    def append(self, row: Row) -> None:
        """Append one (guaranteed-new) row's codes."""
        code = value_catalog().code
        slot = len(self._rows)
        self._pos[row] = slot
        self._rows.append(row)
        codes = [code(value) for value in row]
        for position, column in enumerate(self._columns):
            column.append(codes[position])
        self.generation += 1
        self._np_columns = None
        if self._groups:
            global _INDEX_DELTA_MERGES
            for positions, index in self._groups.items():
                _INDEX_DELTA_MERGES += 1
                index._add(_group_key(codes, positions), slot)

    def extend(self, rows: Sequence[Row],
               code_rows: Optional[Sequence[Sequence[int]]] = None) -> None:
        """Append many (guaranteed-new, distinct) rows in one bulk pass.

        ``code_rows`` — the rows' catalog codes, positionally aligned — lets
        callers that already encoded the batch (the batched trigger path
        instantiates heads as code arrays) skip re-encoding here.  Group
        indexes are delta-merged with the new slots; the numpy column cache
        is invalidated once for the whole batch instead of per row.
        """
        if not rows:
            return
        if code_rows is None:
            code = value_catalog().code
            code_rows = [tuple(code(value) for value in row) for row in rows]
        base = len(self._rows)
        slot_of = self._pos
        stored = self._rows
        for offset, row in enumerate(rows):  # per-tuple: ok — slot bookkeeping, O(batch)
            slot_of[row] = base + offset
            stored.append(row)
        for position, column in enumerate(self._columns):
            column.extend([codes[position] for codes in code_rows])
        self.generation += 1
        self._np_columns = None
        if self._groups:
            global _INDEX_DELTA_MERGES
            for positions, index in self._groups.items():
                _INDEX_DELTA_MERGES += 1
                for offset, codes in enumerate(code_rows):
                    index._add(_group_key(codes, positions), base + offset)

    def discard(self, row: Row) -> None:
        """Swap-remove one (guaranteed-present) row, keeping columns dense."""
        slot = self._pos.pop(row)
        last = len(self._rows) - 1
        groups = self._groups
        removed_codes = [column[slot] for column in self._columns] \
            if groups else None
        moved_codes = [column[last] for column in self._columns] \
            if groups and slot != last else None
        if slot != last:
            moved = self._rows[last]
            self._rows[slot] = moved
            self._pos[moved] = slot
            for column in self._columns:
                column[slot] = column[last]
        self._rows.pop()
        for column in self._columns:
            column.pop()
        self.generation += 1
        self._np_columns = None
        if groups:
            global _INDEX_DELTA_MERGES
            for positions, index in groups.items():
                _INDEX_DELTA_MERGES += 1
                index._remove(_group_key(removed_codes, positions), slot)
                if moved_codes is not None:
                    index._relocate(_group_key(moved_codes, positions),
                                    last, slot)

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def column(self, position: int) -> array:
        """The raw code column at ``position`` (treat as read-only)."""
        return self._columns[position]

    def np_columns(self) -> list:
        """All columns as cached ``int64`` ndarrays (numpy path only)."""
        if self._np_generation != self.generation or self._np_columns is None:
            # np.array (not asarray): a buffer-protocol *view* over the
            # array('q') would lock it against resizing appends.
            self._np_columns = [_np.array(column, dtype=_np.int64)
                                for column in self._columns]
            self._np_generation = self.generation
        return self._np_columns

    def group_index(self, positions: Tuple[int, ...]) -> _GroupIndex:
        """Code key at ``positions`` → slots carrying it (maintained).

        The columnar analogue of ``Relation.index_on``: one dict probe per
        binding row answers "which stored rows agree with these codes".
        Keys are a bare int for single-position indexes, a code tuple
        otherwise; slot buckets come back as ``int64`` ndarrays on the
        numpy path (ready for fancy-index gathers) and plain lists on the
        fallback.  Built once by a full scan, then kept consistent by the
        mutation hooks (delta merge), so the build cost is paid once per
        (store, positions) instead of once per mutation burst.
        """
        index = self._groups.get(positions)
        if index is None:
            buckets: Dict[Any, List[int]] = {}
            if len(positions) == 1:
                for slot, code in enumerate(self._columns[positions[0]]):
                    bucket = buckets.get(code)
                    if bucket is None:
                        buckets[code] = [slot]
                    else:
                        bucket.append(slot)
            else:
                columns = [self._columns[p] for p in positions]
                for slot, key in enumerate(zip(*columns)):
                    bucket = buckets.get(key)
                    if bucket is None:
                        buckets[key] = [slot]
                    else:
                        bucket.append(slot)
            index = _GroupIndex(buckets)
            self._groups[positions] = index
        return index

    def copy(self) -> "ColumnStore":
        """An independent copy (C-level array/dict duplication)."""
        clone = ColumnStore(self.arity)
        clone._columns = [array("q", column) for column in self._columns]
        clone._rows = list(self._rows)
        clone._pos = dict(self._pos)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ColumnStore(arity={self.arity}, rows={len(self._rows)}, "
                f"generation={self.generation})")
