"""CSV import/export for relations and database instances.

The on-disk format is deliberately simple: one CSV file per relation, first
row is the header (attribute names), remaining rows are tuples.  Labeled
nulls are serialized as ``#null:<label>`` so that round-tripping an instance
that contains chase-generated nulls is lossless.

Every decoded constant is passed through
:func:`~repro.relational.values.intern_value`: CSV data is full of repeated
dimension members and categorical values, and dictionary-encoding them at
ingestion makes hot-path tuple hashing and equality hit pointer identity
(see benchmark E14's interning microbenchmark).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Iterable, Optional, Union

from ..errors import SchemaError
from .instance import DatabaseInstance, Relation
from .schema import RelationSchema
from .values import Null, intern_value

_NULL_PREFIX = "#null:"

PathLike = Union[str, Path]


def _encode_value(value: Any) -> str:
    if isinstance(value, Null):
        return f"{_NULL_PREFIX}{value.label}"
    return str(value)


def _decode_value(text: str) -> Any:
    if text.startswith(_NULL_PREFIX):
        return Null(intern_value(text[len(_NULL_PREFIX):]))
    return intern_value(text)


def write_relation_csv(relation: Relation, path: PathLike) -> None:
    """Write ``relation`` to ``path`` as a CSV file with a header row."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.schema.attributes)
        # per-tuple: ok — serialization must visit every row once
        for row in relation.sorted_rows():
            writer.writerow([_encode_value(value) for value in row])


def read_relation_csv(path: PathLike, name: Optional[str] = None) -> Relation:
    """Read a relation from a CSV file written by :func:`write_relation_csv`.

    The relation name defaults to the file stem.
    """
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"CSV file {path} is empty; expected a header row") from None
        schema = RelationSchema(name or path.stem, header)
        relation = Relation(schema)
        # Bulk-add: decode the whole file, then load it in one pass (the
        # fresh relation takes the wholesale dict assignment fast path).
        relation.bulk_load(
            tuple(_decode_value(cell) for cell in row)
            for row in reader if row)
    return relation


def write_instance_csv(instance: DatabaseInstance, directory: PathLike) -> None:
    """Write every relation of ``instance`` to ``directory`` (one CSV each)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for relation in instance:
        write_relation_csv(relation, directory / f"{relation.schema.name}.csv")


def read_instance_csv(directory: PathLike,
                      relation_names: Optional[Iterable[str]] = None) -> DatabaseInstance:
    """Read a database instance from a directory of CSV files.

    When ``relation_names`` is given, only those files are read; otherwise
    every ``*.csv`` file in the directory becomes a relation.
    """
    directory = Path(directory)
    instance = DatabaseInstance()
    if relation_names is not None:
        paths = [directory / f"{name}.csv" for name in relation_names]
    else:
        paths = sorted(directory.glob("*.csv"))
    for path in paths:
        relation = read_relation_csv(path)
        target = instance.declare(relation.schema.name, relation.schema.attributes)
        target.add_all(relation)
    return instance
