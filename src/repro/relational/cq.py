"""Pattern-based conjunctive query evaluation over database instances.

This module offers a small, self-contained conjunctive-query evaluator that
works directly on :class:`~repro.relational.instance.DatabaseInstance`
objects, independently of the Datalog± engine.  It exists for two reasons:

* the MD navigation primitives and the quality-measure code need simple
  "match this pattern against the data" functionality without pulling in the
  full rule machinery, and
* the test-suite uses it as an *independent oracle* to cross-check the
  Datalog± engine's conjunctive-query evaluation.

Queries are written with :class:`PatternAtom` objects; variables are plain
strings starting with ``?`` (e.g. ``"?x"``), everything else is a constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Sequence, Tuple

from ..errors import ArityError, QueryAnsweringError
from .instance import DatabaseInstance

Binding = Dict[str, Any]


def is_pattern_variable(term: Any) -> bool:
    """Return ``True`` if ``term`` denotes a pattern variable (``"?name"``)."""
    return isinstance(term, str) and term.startswith("?") and len(term) > 1


@dataclass(frozen=True)
class PatternAtom:
    """One atom of a pattern query: a relation name and a list of terms.

    Terms that are strings starting with ``?`` are variables; all other
    terms (including non-string values) are constants to be matched exactly.
    """

    relation: str
    terms: Tuple[Any, ...]

    def __init__(self, relation: str, terms: Sequence[Any]):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", tuple(terms))

    def variables(self) -> List[str]:
        """Variables of the atom, in order of first occurrence."""
        seen: List[str] = []
        for term in self.terms:
            if is_pattern_variable(term) and term not in seen:
                seen.append(term)
        return seen

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(map(str, self.terms))})"


@dataclass
class PatternQuery:
    """A conjunctive pattern query: answer variables + a list of atoms.

    ``filters`` are optional arbitrary predicates over a candidate binding,
    evaluated after all atoms are matched; they model built-in comparisons
    (``Sep/5-11:45 <= t <= Sep/5-12:15`` in the paper's Example 7) without
    complicating the atom language.
    """

    answer_variables: Tuple[str, ...]
    atoms: Tuple[PatternAtom, ...]
    filters: Tuple[Callable[[Binding], bool], ...] = ()

    def __init__(self, answer_variables: Sequence[str], atoms: Sequence[PatternAtom],
                 filters: Sequence[Callable[[Binding], bool]] = ()):
        self.answer_variables = tuple(answer_variables)
        self.atoms = tuple(atoms)
        self.filters = tuple(filters)
        body_variables = {v for atom in self.atoms for v in atom.variables()}
        for variable in self.answer_variables:
            if variable not in body_variables:
                raise QueryAnsweringError(
                    f"answer variable {variable!r} does not occur in the query body"
                )

    def __str__(self) -> str:
        head = ", ".join(self.answer_variables)
        body = ", ".join(str(atom) for atom in self.atoms)
        return f"ans({head}) <- {body}"


def _match_atom(atom: PatternAtom, instance: DatabaseInstance,
                binding: Binding) -> Iterator[Binding]:
    """Yield all extensions of ``binding`` matching ``atom`` in ``instance``."""
    relation = instance.relation(atom.relation)
    if len(atom.terms) != relation.schema.arity:
        raise ArityError(
            f"pattern atom {atom} does not match arity {relation.schema.arity} "
            f"of relation {atom.relation!r}"
        )
    for row in relation:
        extended = dict(binding)
        ok = True
        for term, value in zip(atom.terms, row):
            if is_pattern_variable(term):
                bound = extended.get(term, _UNBOUND)
                if bound is _UNBOUND:
                    extended[term] = value
                elif bound != value:
                    ok = False
                    break
            elif term != value:
                ok = False
                break
        if ok:
            yield extended


_UNBOUND = object()


def plan_atoms(query: PatternQuery,
               instance: DatabaseInstance) -> List[PatternAtom]:
    """A plan-shaped form of the query: its atoms in greedy join order.

    Mirrors the engine planner
    (:meth:`repro.engine.matching.IndexedMatcher.plan`): at each step the
    atom with the fewest still-unbound variables is chosen, ties broken by
    smaller relation, so constrained atoms prune early and empty relations
    short-circuit immediately.  Arity is validated for *every* atom up
    front — reordering must not change which malformed atom is reported.
    Semantics are order-independent (the joins are a conjunction), so the
    plan is purely an evaluation shape.
    """
    for atom in query.atoms:
        relation = instance.relation(atom.relation)
        if len(atom.terms) != relation.schema.arity:
            raise ArityError(
                f"pattern atom {atom} does not match arity "
                f"{relation.schema.arity} of relation {atom.relation!r}"
            )
    remaining = list(query.atoms)
    bound: set = set()
    ordered: List[PatternAtom] = []

    def cost(atom: PatternAtom) -> Tuple[int, int]:
        unbound = {term for term in atom.terms
                   if is_pattern_variable(term) and term not in bound}
        return (len(unbound), len(instance.relation(atom.relation)))

    while remaining:
        best = min(remaining, key=cost)
        remaining.remove(best)
        ordered.append(best)
        bound.update(best.variables())
    return ordered


def _join(atoms: Sequence[PatternAtom],
          instance: DatabaseInstance) -> List[Binding]:
    bindings: List[Binding] = [{}]
    for atom in atoms:
        bindings = [
            extended
            for binding in bindings
            for extended in _match_atom(atom, instance, binding)
        ]
        if not bindings:
            return []
    return bindings


def evaluate(query: PatternQuery, instance: DatabaseInstance) -> List[Tuple[Any, ...]]:
    """Evaluate ``query`` over ``instance`` and return the set of answers.

    Answers are tuples of values for the query's answer variables, with
    duplicates removed; the result order is deterministic (sorted by the
    textual form of the values).  Atoms are joined in the
    :func:`plan_atoms` order.
    """
    bindings = _join(plan_atoms(query, instance), instance)
    answers = set()
    for binding in bindings:
        if all(check(binding) for check in query.filters):
            answers.add(tuple(binding[v] for v in query.answer_variables))
    return sorted(answers, key=lambda row: tuple(map(str, row)))


def holds(query: PatternQuery, instance: DatabaseInstance) -> bool:
    """Boolean evaluation: ``True`` iff the query has at least one match."""
    bindings = _join(plan_atoms(query, instance), instance)
    return any(
        all(check(binding) for check in query.filters)
        for binding in bindings
    )
