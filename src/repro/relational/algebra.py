"""A small relational algebra over :class:`~repro.relational.instance.Relation`.

The algebra is deliberately minimal — selection, projection, renaming,
natural join, theta join, union, difference, intersection — because the heavy
lifting in this library is done by the Datalog± engine.  It is used by the
quality-assessment layer (for computing departure measures between an
instance and its quality version), by report code and by tests that
cross-check conjunctive-query evaluation.

All operators are pure: they return new relations and never mutate operands.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from ..errors import SchemaError
from .instance import Relation
from .schema import RelationSchema

Predicate = Callable[[Dict[str, Any]], bool]


def select(relation: Relation, predicate: Predicate, name: Optional[str] = None) -> Relation:
    """Return the tuples of ``relation`` satisfying ``predicate``.

    ``predicate`` receives each tuple as an attribute→value dict.
    """
    schema = relation.schema if name is None else relation.schema.rename(name)
    result = Relation(schema)
    attributes = relation.schema.attributes
    for row in relation:
        if predicate(dict(zip(attributes, row))):
            result.add(row)
    return result


def select_eq(relation: Relation, conditions: Mapping[str, Any],
              name: Optional[str] = None) -> Relation:
    """Selection by attribute=constant conditions (conjunctive)."""
    positions = [(relation.schema.position_of(attr), value)
                 for attr, value in conditions.items()]
    schema = relation.schema if name is None else relation.schema.rename(name)
    result = Relation(schema)
    for row in relation:
        if all(row[pos] == value for pos, value in positions):
            result.add(row)
    return result


def project(relation: Relation, attributes: Sequence[str],
            name: Optional[str] = None) -> Relation:
    """Projection on ``attributes`` (duplicates removed, order preserved)."""
    positions = [relation.schema.position_of(attr) for attr in attributes]
    schema = RelationSchema(name or relation.schema.name, tuple(attributes))
    result = Relation(schema)
    for row in relation:
        result.add(tuple(row[pos] for pos in positions))
    return result


def rename(relation: Relation, mapping: Mapping[str, str],
           name: Optional[str] = None) -> Relation:
    """Rename attributes according to ``mapping`` (old name → new name)."""
    for old in mapping:
        if not relation.schema.has_attribute(old):
            raise SchemaError(
                f"cannot rename unknown attribute {old!r} of {relation.schema.name!r}"
            )
    new_attrs = tuple(mapping.get(attr, attr) for attr in relation.schema.attributes)
    schema = RelationSchema(name or relation.schema.name, new_attrs)
    result = Relation(schema)
    for row in relation:
        result.add(row)
    return result


def _check_union_compatible(left: Relation, right: Relation) -> None:
    if left.schema.arity != right.schema.arity:
        raise SchemaError(
            f"relations {left.schema.name!r} (arity {left.schema.arity}) and "
            f"{right.schema.name!r} (arity {right.schema.arity}) are not union-compatible"
        )


def union(left: Relation, right: Relation, name: Optional[str] = None) -> Relation:
    """Set union; operands must have the same arity."""
    _check_union_compatible(left, right)
    schema = left.schema if name is None else left.schema.rename(name)
    result = Relation(schema, left)
    result.add_all(right)
    return result


def difference(left: Relation, right: Relation, name: Optional[str] = None) -> Relation:
    """Set difference ``left - right``; operands must have the same arity."""
    _check_union_compatible(left, right)
    schema = left.schema if name is None else left.schema.rename(name)
    right_rows = set(right)
    result = Relation(schema)
    for row in left:
        if row not in right_rows:
            result.add(row)
    return result


def intersection(left: Relation, right: Relation, name: Optional[str] = None) -> Relation:
    """Set intersection; operands must have the same arity."""
    _check_union_compatible(left, right)
    schema = left.schema if name is None else left.schema.rename(name)
    right_rows = set(right)
    result = Relation(schema)
    for row in left:
        if row in right_rows:
            result.add(row)
    return result


def natural_join(left: Relation, right: Relation, name: Optional[str] = None) -> Relation:
    """Natural join on the attributes the two schemas share.

    The result schema is the left schema followed by the right-only
    attributes.  With no shared attribute this degenerates to the Cartesian
    product.  A hash join on the shared attributes keeps it linear-ish.
    """
    left_attrs = left.schema.attributes
    right_attrs = right.schema.attributes
    shared = [attr for attr in left_attrs if attr in right_attrs]
    right_only = [attr for attr in right_attrs if attr not in shared]
    result_name = name or f"{left.schema.name}_{right.schema.name}"
    schema = RelationSchema(result_name, tuple(left_attrs) + tuple(right_only))

    left_shared_pos = [left.schema.position_of(a) for a in shared]
    right_shared_pos = [right.schema.position_of(a) for a in shared]
    right_only_pos = [right.schema.position_of(a) for a in right_only]

    index: Dict[Tuple, list] = {}
    for row in right:
        key = tuple(row[pos] for pos in right_shared_pos)
        index.setdefault(key, []).append(row)

    result = Relation(schema)
    for row in left:
        key = tuple(row[pos] for pos in left_shared_pos)
        for other in index.get(key, ()):  # hash-join probe
            result.add(tuple(row) + tuple(other[pos] for pos in right_only_pos))
    return result


def theta_join(left: Relation, right: Relation,
               condition: Callable[[Dict[str, Any], Dict[str, Any]], bool],
               name: Optional[str] = None) -> Relation:
    """Join with an arbitrary boolean ``condition(left_row, right_row)``.

    Attribute names of the right operand that clash with the left are
    prefixed with the right relation's name to keep the result schema valid.
    """
    left_attrs = left.schema.attributes
    right_attrs = tuple(
        attr if attr not in left_attrs else f"{right.schema.name}.{attr}"
        for attr in right.schema.attributes
    )
    result_name = name or f"{left.schema.name}_{right.schema.name}"
    schema = RelationSchema(result_name, left_attrs + right_attrs)
    result = Relation(schema)
    for lrow in left:
        ldict = dict(zip(left.schema.attributes, lrow))
        for rrow in right:
            rdict = dict(zip(right.schema.attributes, rrow))
            if condition(ldict, rdict):
                result.add(tuple(lrow) + tuple(rrow))
    return result


def cartesian_product(left: Relation, right: Relation, name: Optional[str] = None) -> Relation:
    """Cartesian product (theta join with an always-true condition)."""
    return theta_join(left, right, lambda _l, _r: True, name=name)


def distinct_values(relation: Relation, attribute: str) -> set:
    """The set of distinct values of ``attribute`` in ``relation``."""
    return set(relation.column(attribute))


def tuple_containment_ratio(subject: Relation, reference: Relation) -> float:
    """Fraction of ``subject`` tuples that also appear in ``reference``.

    This is the basic building block of the data-quality measures of
    Section V: the quality of an instance is the degree to which it agrees
    with its quality version.  An empty subject is vacuously of ratio 1.0.
    """
    _check_union_compatible(subject, reference)
    if len(subject) == 0:
        return 1.0
    reference_rows = set(reference)
    kept = sum(1 for row in subject if row in reference_rows)
    return kept / len(subject)
