"""Relation and database instances.

Instances are in-memory, set-based (duplicate-free) collections of tuples.
They are the extensional layer on which the relational algebra, the chase
and the query-answering algorithms operate.

Design notes
------------
* Tuples are stored as plain Python tuples.  Values may be ordinary constants
  or labeled :class:`~repro.relational.values.Null` objects.
* A :class:`Relation` keeps insertion order (useful for readable reports) but
  membership and equality are set semantics.
* A :class:`Relation` builds **hash indexes on demand**: per-position-pattern
  indexes (``index_on``/``probe``) used by the engine's matching layer to
  look up rows by their bound positions, and a **null-occurrence index**
  (``rows_with_value``) used by EGD merges to rewrite only affected rows.
  Indexes are maintained incrementally on ``add``/``discard`` and dropped on
  ``clear``; a relation that is never probed pays nothing.
* A :class:`DatabaseInstance` couples a :class:`DatabaseSchema` with one
  :class:`Relation` per declared relation; tuples can only be inserted into
  declared relations and must match the declared arity.

See ``docs/ARCHITECTURE.md`` for how this storage layer sits under the
matching and evaluation layers.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import UnknownRelationError
from .schema import DatabaseSchema, RelationSchema
from .values import Null, value_sort_key

Row = Tuple[Any, ...]


class Relation:
    """A duplicate-free, insertion-ordered set of tuples under one schema."""

    def __init__(self, schema: RelationSchema, rows: Iterable[Sequence[Any]] = ()):
        self.schema = schema
        self._rows: Dict[Row, None] = {}
        #: position-pattern indexes: (positions...) -> key values -> rows
        self._indexes: Dict[Tuple[int, ...], Dict[Tuple[Any, ...], Dict[Row, None]]] = {}
        #: value-occurrence index (built on demand): value -> rows containing it
        self._value_index: Optional[Dict[Any, Dict[Row, None]]] = None
        #: interned-int column mirror (built on demand by the columnar engine)
        self._column_store: Optional["ColumnStore"] = None
        #: bumped on every effective mutation; versions the snapshot cache
        self._mutations = 0
        #: (mutation stamp, clone) of the last snapshot — shared while valid
        self._snapshot_cache: Optional[Tuple[int, "Relation"]] = None
        for row in rows:
            self.add(row)

    # -- mutation -----------------------------------------------------------

    def add(self, row: Sequence[Any]) -> bool:
        """Insert ``row``; return ``True`` if it was not already present."""
        self.schema.check_arity(row)
        key = tuple(row)
        if key in self._rows:
            return False
        self._rows[key] = None
        self._mutations += 1
        if self._indexes:
            for positions, index in self._indexes.items():
                index.setdefault(tuple(key[p] for p in positions), {})[key] = None
        if self._value_index is not None:
            for value in set(key):
                self._value_index.setdefault(value, {})[key] = None
        if self._column_store is not None:
            self._column_store.append(key)
        return True

    def add_all(self, rows: Iterable[Sequence[Any]]) -> int:
        """Insert every row of ``rows``; return how many were new."""
        return sum(self.add_many(rows))

    def add_many(self, rows: Iterable[Sequence[Any]],
                 code_rows: Optional[Sequence[Sequence[int]]] = None
                 ) -> List[bool]:
        """Bulk insert; return the per-row novelty mask, in order.

        The batch form of :meth:`add`: membership is decided row by row
        (so in-batch duplicates report novel once, like repeated ``add``
        calls), but every index structure — pattern indexes, the occurrence
        index and the column store — is updated once for the whole batch of
        novel rows, and the mutation counter advances once instead of once
        per row.  ``code_rows`` optionally carries the rows'
        :class:`~repro.relational.values.ValueCatalog` codes (positionally
        aligned with ``rows``) so an already-encoded batch — the chase's
        batched trigger application — skips re-encoding in the column
        store.

        The returned mask is what delta-driven callers consume: the novel
        rows *are* the next round's delta, with no re-probing.
        """
        rows_map = self._rows
        check_arity = self.schema.check_arity
        novel: List[bool] = []
        new_rows: List[Row] = []
        new_codes: Optional[List[Sequence[int]]] = \
            [] if code_rows is not None else None
        for index, row in enumerate(rows):
            key = tuple(row)
            check_arity(key)
            if key in rows_map:
                novel.append(False)
                continue
            rows_map[key] = None
            novel.append(True)
            new_rows.append(key)
            if new_codes is not None:
                new_codes.append(code_rows[index])
        if not new_rows:
            return novel
        self._mutations += 1
        if self._indexes:
            for positions, index in self._indexes.items():
                for key in new_rows:
                    index.setdefault(
                        tuple(key[p] for p in positions), {})[key] = None
        if self._value_index is not None:
            for key in new_rows:
                for value in set(key):
                    self._value_index.setdefault(value, {})[key] = None
        if self._column_store is not None:
            self._column_store.extend(new_rows, new_codes)
        return novel

    def bulk_load(self, rows: Iterable[Sequence[Any]]) -> int:
        """Wholesale-assign ``rows`` into an empty, index-free relation.

        The restore fast path (snapshot decode, CSV ingestion of a fresh
        relation): rows go straight into the row dictionary via
        ``dict.fromkeys`` — one C-level pass, no per-row index maintenance
        because there is nothing to maintain yet — after a single arity
        scan.  Falls back to :meth:`add_many` when the relation already
        holds rows or built indexes.  Returns how many rows were loaded.
        """
        if self._rows or self._indexes or self._value_index is not None \
                or self._column_store is not None:
            return sum(self.add_many(rows))
        keyed = [tuple(row) for row in rows]
        arity = self.schema.arity
        if any(len(row) != arity for row in keyed):
            for row in keyed:
                self.schema.check_arity(row)
        self._rows = dict.fromkeys(keyed)
        self._mutations += 1
        return len(self._rows)

    def discard(self, row: Sequence[Any]) -> bool:
        """Remove ``row`` if present; return whether it was present."""
        key = tuple(row)
        if key in self._rows:
            del self._rows[key]
            self._mutations += 1
            if self._column_store is not None:
                self._column_store.discard(key)
            if self._indexes:
                for positions, index in self._indexes.items():
                    bucket_key = tuple(key[p] for p in positions)
                    bucket = index.get(bucket_key)
                    if bucket is not None:
                        bucket.pop(key, None)
                        if not bucket:
                            del index[bucket_key]
            if self._value_index is not None:
                for value in set(key):
                    bucket = self._value_index.get(value)
                    if bucket is not None:
                        bucket.pop(key, None)
                        if not bucket:
                            del self._value_index[value]
            return True
        return False

    def clear(self) -> None:
        """Remove all tuples (and drop any indexes built over them)."""
        self._rows.clear()
        self._indexes.clear()
        self._value_index = None
        self._column_store = None
        self._mutations += 1

    # -- indexing -----------------------------------------------------------

    def index_on(self, positions: Tuple[int, ...]) -> Dict[Tuple[Any, ...], Dict[Row, None]]:
        """The hash index over ``positions`` (built lazily, then maintained).

        The index maps the tuple of values at ``positions`` to the rows
        carrying those values.  Once built it is kept up to date by
        ``add``/``discard``, so repeated probes cost one dict lookup.
        """
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            for row in self._rows:
                index.setdefault(tuple(row[p] for p in positions), {})[row] = None
            self._indexes[positions] = index
        return index

    def probe(self, positions: Tuple[int, ...], key: Tuple[Any, ...]) -> List[Row]:
        """Rows whose values at ``positions`` equal ``key`` (via the index)."""
        bucket = self.index_on(positions).get(key)
        return list(bucket) if bucket else []

    def rows_with_value(self, value: Any) -> List[Row]:
        """Rows containing ``value`` at any position (via the occurrence index).

        This is the null-occurrence index the chase uses for EGD merges: when
        a labeled null is equated with another value, only the rows returned
        here need to be rewritten instead of rescanning the whole relation.
        """
        if self._value_index is None:
            self._value_index = {}
            for row in self._rows:
                for row_value in set(row):
                    self._value_index.setdefault(row_value, {})[row] = None
        bucket = self._value_index.get(value)
        return list(bucket) if bucket else []

    def index_count(self) -> int:
        """How many pattern indexes are currently materialized (for stats)."""
        return len(self._indexes) + (1 if self._value_index is not None else 0)

    def column_store(self) -> "ColumnStore":
        """The interned-int column mirror (built lazily, then maintained).

        The columnar engine's batch kernels operate on this store; relations
        never touched by the columnar engine don't build one.  Snapshot
        restores assign rows wholesale to *fresh* relations, so a restored
        relation simply rebuilds its columns here on first columnar access.
        """
        store = self._column_store
        if store is None:
            from .columns import ColumnStore
            store = ColumnStore.build(self.schema.arity, self._rows)
            self._column_store = store
        return store

    # -- inspection ---------------------------------------------------------

    def __contains__(self, row: Sequence[Any]) -> bool:
        return tuple(row) in self._rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def rows(self) -> List[Row]:
        """All tuples, in insertion order."""
        return list(self._rows)

    def sorted_rows(self) -> List[Row]:
        """All tuples, in a deterministic total order (for reports/tests)."""
        return sorted(self._rows, key=lambda row: tuple(value_sort_key(v) for v in row))

    def column(self, attribute: str) -> List[Any]:
        """Values of ``attribute`` across all tuples (with duplicates)."""
        position = self.schema.position_of(attribute)
        return [row[position] for row in self._rows]

    def active_domain(self) -> Set[Any]:
        """The set of all values (constants and nulls) appearing in tuples."""
        return {value for row in self._rows for value in row}

    def constants(self) -> Set[Any]:
        """The set of non-null values appearing in tuples."""
        return {value for row in self._rows for value in row if not isinstance(value, Null)}

    def nulls(self) -> Set[Null]:
        """The set of labeled nulls appearing in tuples."""
        return {value for row in self._rows for value in row if isinstance(value, Null)}

    def as_dicts(self) -> List[Dict[str, Any]]:
        """Tuples as attribute→value dictionaries (handy for reports)."""
        return [dict(zip(self.schema.attributes, row)) for row in self._rows]

    def copy(self) -> "Relation":
        """Return an independent copy with the same schema and tuples."""
        return Relation(self.schema, self._rows)

    def snapshot(self) -> "Relation":
        """A fast structural copy for version publication.

        Unlike :meth:`copy` (which re-inserts row by row), the snapshot
        duplicates the row dictionary, the already-built position-pattern
        indexes and the column store at the C level, so probes against the
        snapshot keep costing one dict lookup without a rebuild.  The
        occurrence index is dropped: it only serves EGD merges, which never
        run on published versions.

        Snapshots are **copy-on-write across publications**: the clone is
        cached with the relation's mutation stamp, and as long as the
        relation has not been mutated since, the *same* clone object is
        returned — publishing an untouched relation costs one counter
        comparison instead of re-copying every index bucket.  Sharing is
        safe because published relations are immutable by contract (see
        :meth:`DatabaseInstance.attach`).
        """
        cached = self._snapshot_cache
        if cached is not None and cached[0] == self._mutations:
            return cached[1]
        clone = Relation.__new__(Relation)
        clone.schema = self.schema
        clone._rows = dict(self._rows)
        clone._indexes = {
            positions: {key: dict(bucket) for key, bucket in index.items()}
            for positions, index in self._indexes.items()
        }
        clone._value_index = None
        clone._column_store = None if self._column_store is None \
            else self._column_store.copy()
        clone._mutations = 0
        clone._snapshot_cache = None
        self._snapshot_cache = (self._mutations, clone)
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.schema == other.schema and set(self._rows) == set(other._rows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self.schema}, {len(self)} tuples)"

    def pretty(self, limit: Optional[int] = None) -> str:
        """An aligned, human-readable rendering of the relation."""
        rows = self.sorted_rows()
        if limit is not None:
            rows = rows[:limit]
        header = list(self.schema.attributes)
        cells = [[str(v) for v in row] for row in rows]
        widths = [len(h) for h in header]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        def fmt(row: Sequence[str]) -> str:
            return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        lines = [self.schema.name, fmt(header), "-+-".join("-" * w for w in widths)]
        lines.extend(fmt(row) for row in cells)
        if limit is not None and len(self) > limit:
            lines.append(f"... ({len(self) - limit} more)")
        return "\n".join(lines)


class DatabaseInstance:
    """A database instance: one :class:`Relation` per schema relation."""

    def __init__(self, schema: Optional[DatabaseSchema] = None):
        self.schema = schema if schema is not None else DatabaseSchema()
        self._relations: Dict[str, Relation] = {
            rel.name: Relation(rel) for rel in self.schema
        }

    # -- schema-level operations --------------------------------------------

    def declare(self, name: str, attributes: Sequence[str]) -> Relation:
        """Declare a relation in the schema (if new) and return its instance."""
        rel_schema = self.schema.add(RelationSchema(name, attributes))
        if name not in self._relations:
            self._relations[name] = Relation(rel_schema)
        return self._relations[name]

    def attach(self, relation: Relation) -> Relation:
        """Register ``relation`` under its schema name, **sharing** the object.

        This is the copy-on-write primitive of the versioning layer
        (:mod:`repro.engine.versioning`): a published instance version
        attaches the previous version's relation objects for relations an
        update did not touch, so their rows and pattern indexes are reused
        instead of copied.  Attached relations must be treated as immutable.
        """
        self.schema.add(relation.schema)
        self._relations[relation.schema.name] = relation
        return relation

    def relation(self, name: str) -> Relation:
        """Return the :class:`Relation` registered under ``name``."""
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(
                f"unknown relation {name!r}; known relations: {sorted(self._relations)}"
            ) from None

    def has_relation(self, name: str) -> bool:
        """Return ``True`` if a relation of that name exists."""
        return name in self._relations

    def relations(self) -> List[Relation]:
        """All relation instances, in declaration order."""
        return list(self._relations.values())

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    # -- tuple-level operations ---------------------------------------------

    def add(self, name: str, row: Sequence[Any]) -> bool:
        """Insert ``row`` into relation ``name``; the relation must exist."""
        return self.relation(name).add(row)

    def add_fact(self, name: str, *values: Any) -> bool:
        """Insert a fact given positionally, declaring nothing implicitly."""
        return self.add(name, values)

    def add_all(self, name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Insert many rows into relation ``name``; return how many were new."""
        return self.relation(name).add_all(rows)

    def facts(self) -> Iterator[Tuple[str, Row]]:
        """Iterate over all facts as ``(relation_name, row)`` pairs."""
        for relation in self._relations.values():
            for row in relation:
                yield relation.schema.name, row

    def total_tuples(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(relation) for relation in self._relations.values())

    def active_domain(self) -> Set[Any]:
        """Union of the active domains of all relations."""
        domain: Set[Any] = set()
        for relation in self._relations.values():
            domain |= relation.active_domain()
        return domain

    def constants(self) -> Set[Any]:
        """Union of the constants of all relations."""
        values: Set[Any] = set()
        for relation in self._relations.values():
            values |= relation.constants()
        return values

    def nulls(self) -> Set[Null]:
        """Union of the labeled nulls of all relations."""
        values: Set[Null] = set()
        for relation in self._relations.values():
            values |= relation.nulls()
        return values

    def copy(self) -> "DatabaseInstance":
        """Deep-ish copy: fresh relations, shared immutable schemas."""
        clone = DatabaseInstance(self.schema.copy())
        for name, relation in self._relations.items():
            clone._relations[name] = relation.copy()
        return clone

    def merge(self, other: "DatabaseInstance") -> "DatabaseInstance":
        """Return a new instance holding the union of both instances."""
        merged = DatabaseInstance(self.schema.merge(other.schema))
        for name, relation in self._relations.items():
            merged.relation(name).add_all(relation)
        for name, relation in other._relations.items():
            merged.relation(name).add_all(relation)
        return merged

    def load(self, data: Mapping[str, Iterable[Sequence[Any]]]) -> "DatabaseInstance":
        """Bulk-load ``{relation_name: [rows...]}``; relations must exist."""
        for name, rows in data.items():
            self.add_all(name, rows)
        return self

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseInstance):
            return NotImplemented
        if set(self._relations) != set(other._relations):
            return False
        return all(
            set(self._relations[name]) == set(other._relations[name])
            for name in self._relations
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{name}:{len(rel)}" for name, rel in self._relations.items())
        return f"DatabaseInstance({parts})"

    def pretty(self, limit: Optional[int] = None) -> str:
        """Readable rendering of all non-empty relations."""
        blocks = [
            relation.pretty(limit=limit)
            for relation in self._relations.values()
            if len(relation)
        ]
        return "\n\n".join(blocks) if blocks else "(empty instance)"
