"""Relational substrate: schemas, instances, algebra and pattern queries.

This package is the storage and evaluation layer that everything else in the
library is grounded in.  It is intentionally free of any Datalog± or
multidimensional notions; those live in :mod:`repro.datalog` and
:mod:`repro.md` respectively and *use* this package.
"""

from .values import Null, NullFactory, is_ground, is_null
from .schema import DatabaseSchema, RelationSchema
from .instance import DatabaseInstance, Relation
from .cq import PatternAtom, PatternQuery, evaluate, holds
from . import algebra, csvio

__all__ = [
    "Null",
    "NullFactory",
    "is_ground",
    "is_null",
    "DatabaseSchema",
    "RelationSchema",
    "DatabaseInstance",
    "Relation",
    "PatternAtom",
    "PatternQuery",
    "evaluate",
    "holds",
    "algebra",
    "csvio",
]
