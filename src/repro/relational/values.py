"""Value domain for the relational substrate.

Relations store ordinary Python values (strings, numbers, dates encoded as
strings, ...) plus *labeled nulls*.  Labeled nulls are the marked null values
introduced by the chase when a tuple-generating dependency has existentially
quantified variables: they denote unknown-but-possibly-equal values and are
compared by identity of their label.

The module also provides :class:`NullFactory`, a deterministic generator of
fresh nulls, so chase runs are reproducible; :class:`ValueInterner` /
:func:`intern_value`, the dictionary encoding applied to constants at
ingestion so equal values share one object (tuple hashing and equality on
the matching hot path then hit CPython's pointer-identity fast paths, and
duplicated constants stop costing memory per row); and a handful of small
helpers shared by the relational algebra and the Datalog± engine.
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple


@dataclass(frozen=True, order=True)
class Null:
    """A labeled (marked) null value.

    Two nulls are equal exactly when their labels are equal.  Nulls are
    hashable and totally ordered (by label) so they can live in sets, dict
    keys and sorted outputs alongside ordinary values.
    """

    label: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Null({self.label!r})"

    def __str__(self) -> str:
        return f"⊥{self.label}"


class NullFactory:
    """Deterministic factory of fresh labeled nulls.

    Each factory owns an independent counter; a chase run (or any other
    data-generating procedure) creates one factory and draws nulls from it,
    which makes generated instances reproducible across runs.

    Parameters
    ----------
    prefix:
        Prepended to every generated label.  Useful to distinguish nulls
        produced by different subsystems (``"n"`` for the chase, ``"u"`` for
        unit placeholders in downward navigation, ...).
    start:
        First label index to hand out.  Snapshot restoration uses this to
        resume a persisted factory exactly where it stopped, so nulls
        invented after a restore never collide with persisted labels.
    """

    def __init__(self, prefix: str = "n", start: int = 1):
        self.prefix = prefix
        self._next = start

    @property
    def next_index(self) -> int:
        """The index the next :meth:`fresh` call will use (serializable state)."""
        return self._next

    def fresh(self) -> Null:
        """Return a new null, never seen before from this factory."""
        label = f"{self.prefix}{self._next}"
        self._next += 1
        return Null(label)

    def fresh_many(self, count: int) -> list[Null]:
        """Return ``count`` distinct fresh nulls."""
        return [self.fresh() for _ in range(count)]


class ValueInterner:
    """Dictionary-encode constants so equal values share one object.

    Ingestion paths (CSV readers, snapshot restores) pass every decoded
    constant through :meth:`intern`.  Strings go through :func:`sys.intern`
    — the process-wide table with the cheapest lookup, and entries CPython
    reclaims when the last reference dies — and every other hashable value
    through a per-interner canonical table, so the *first* object seen for
    a value becomes the one stored everywhere.  The payoff is on the
    matching hot path: CPython's tuple hashing reuses each string's cached
    hash, and equality checks between row values short-cut on pointer
    identity before ever comparing contents.  Unhashable values pass
    through untouched.

    The non-string table holds strong references, so it is **bounded**
    (``max_entries``): once full, unseen values pass through uninterned —
    correctness never depends on interning, only deduplication does — and
    a long-lived process churning through many unrelated datasets cannot
    leak memory proportional to every constant it ever decoded.
    """

    __slots__ = ("_table", "max_entries")

    def __init__(self, max_entries: int = 1 << 20):
        self._table: Dict[Any, Any] = {}
        self.max_entries = max_entries

    def intern(self, value: Any) -> Any:
        """The canonical object equal to ``value`` (registering it if new)."""
        if type(value) is str:
            return sys.intern(value)
        try:
            canonical = self._table.get(value)
            if canonical is not None:
                return canonical
            if len(self._table) >= self.max_entries:
                return value
            self._table[value] = value
            return value
        except TypeError:  # unhashable: cannot be a stored constant anyway
            return value

    def intern_row(self, row: Iterable[Any]) -> Tuple[Any, ...]:
        """Intern every value of one row."""
        return tuple(self.intern(value) for value in row)

    def __len__(self) -> int:
        return len(self._table)


#: the process-wide interner used by the ingestion paths
_INTERNER = ValueInterner()


def intern_value(value: Any) -> Any:
    """Intern ``value`` in the process-wide :class:`ValueInterner`."""
    return _INTERNER.intern(value)


class ValueCatalog:
    """Bijective value ↔ dense-int dictionary encoding for columnar storage.

    Every distinct stored value (constants and labeled nulls alike) is
    assigned one small integer *code*; column stores
    (:mod:`repro.relational.columns`) keep rows as parallel arrays of codes,
    so the batch join kernels compare machine integers instead of hashing
    Python objects.  Codes are process-wide and **append-only**: once a
    value has a code, the pair never changes, which is what lets compiled
    join functions bake constant codes into their probe keys and lets
    column stores built at different times join against each other.

    Equality follows Python value equality (the same semantics the row
    dictionaries already use), so ``1``, ``1.0`` and ``True`` share one
    code whose canonical value is whichever object registered first —
    exactly mirroring :class:`ValueInterner`'s canonicalization.

    Registration is guarded by a lock (the serving daemon matches from
    several threads); the hot read path is a single unlocked ``dict.get``.
    """

    __slots__ = ("_codes", "_values", "_null_flags", "_lock")

    def __init__(self):
        self._codes: Dict[Any, int] = {}
        self._values: List[Any] = []
        #: parallel to ``_values``: 1 where the value is a labeled null
        self._null_flags = bytearray()
        self._lock = threading.Lock()

    def code(self, value: Any) -> int:
        """The code of ``value``, registering it if unseen."""
        found = self._codes.get(value)
        if found is not None:
            return found
        with self._lock:
            found = self._codes.get(value)
            if found is None:
                found = len(self._values)
                self._values.append(value)
                self._null_flags.append(1 if isinstance(value, Null) else 0)
                self._codes[value] = found
            return found

    def register_many(self, values: Iterable[Any]) -> List[int]:
        """The codes of ``values``, registering the unseen ones in one append.

        The bulk form of :meth:`code`: batched trigger application invents
        hundreds of labeled nulls per chase round, and registering them one
        lock acquisition at a time would serialize the batch on the catalog
        lock.  One locked pass appends every unseen value and returns the
        codes positionally.
        """
        codes = self._codes
        items = values if isinstance(values, (list, tuple)) else list(values)
        out: List[int] = [codes.get(value, -1) for value in items]
        if -1 not in out:
            return out
        with self._lock:
            for index, found in enumerate(out):
                if found < 0:
                    value = items[index]
                    found = codes.get(value)
                    if found is None:
                        found = len(self._values)
                        self._values.append(value)
                        self._null_flags.append(
                            1 if isinstance(value, Null) else 0)
                        codes[value] = found
                    out[index] = found
        return out

    def try_code(self, value: Any) -> Optional[int]:
        """The code of ``value`` if it is registered, else ``None``."""
        return self._codes.get(value)

    def value(self, code: int) -> Any:
        """The canonical value registered under ``code``."""
        return self._values[code]

    def values(self) -> List[Any]:
        """The code → value decode table (treat as read-only; index by code)."""
        return self._values

    def null_flags(self) -> bytearray:
        """Per-code null flags (treat as read-only; index by code)."""
        return self._null_flags

    def is_null_code(self, code: int) -> bool:
        """``True`` if ``code`` encodes a labeled null."""
        return bool(self._null_flags[code])

    def __len__(self) -> int:
        return len(self._values)


#: the process-wide catalog shared by every column store and join kernel
_CATALOG = ValueCatalog()


def value_catalog() -> ValueCatalog:
    """The process-wide :class:`ValueCatalog`."""
    return _CATALOG


def is_null(value: Any) -> bool:
    """Return ``True`` if ``value`` is a labeled null."""
    return isinstance(value, Null)


def is_ground(value: Any) -> bool:
    """Return ``True`` if ``value`` is an ordinary (non-null) constant."""
    return not isinstance(value, Null)


def ground_values(values: Iterable[Any]) -> Iterator[Any]:
    """Yield only the non-null values of ``values``."""
    for value in values:
        if not isinstance(value, Null):
            yield value


def value_sort_key(value: Any) -> tuple:
    """A total order over mixed-type values (constants and nulls).

    Python refuses to compare, say, ``int`` with ``str``; benchmark and
    report code nevertheless wants deterministic orderings of answer sets.
    The key orders by (type bucket, textual form) which is stable and total.
    """
    if isinstance(value, Null):
        return (2, value.label)
    if isinstance(value, bool):
        return (1, f"b{int(value)}")
    if isinstance(value, (int, float)):
        return (0, f"{float(value):030.10f}")
    return (1, str(value))
