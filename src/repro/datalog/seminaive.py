"""Semi-naive evaluation of plain (existential-free) Datalog programs.

The quality-version definitions of Section V and the first-order rewritings
of Section IV are plain Datalog programs: no existential quantifiers, so no
nulls need to be invented.  Semi-naive evaluation computes their least model
much faster than the general chase because each round only joins the *delta*
(facts new in the previous round) against the rest of the data.

Atom matching goes through the shared engine (:mod:`repro.engine`): with the
default ``"indexed"`` engine each join probes hash indexes on the bound
positions, and rules are dispatched per predicate — a rule whose body shares
no predicate with the delta is skipped without matching anything.  The
columnar engine additionally routes whole rounds through the batched
trigger path (:mod:`repro.engine.triggers`): the joined binding table
projects every head atom as code arrays and ``Relation.add_many`` inserts
them in bulk, its novelty mask yielding the next round's delta directly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..engine.matching import iter_delta_joins, matcher_for
from ..engine.stats import EngineStats
from ..errors import DatalogError
from ..relational.instance import DatabaseInstance
from .program import DatalogProgram
from .rules import TGD
from .unify import apply_to_atom

Fact = Tuple[str, Tuple[Any, ...]]


def _check_plain(rules: Sequence[TGD]) -> None:
    for rule in rules:
        if rule.is_existential():
            raise DatalogError(
                f"semi-naive evaluation only handles existential-free rules, got: {rule}"
            )


def _new_head_facts(rule: TGD, instance: DatabaseInstance,
                    delta: Optional[List[Fact]],
                    matcher) -> List[Tuple[str, Tuple]]:
    """Head facts derivable from ``rule`` using at least one delta atom.

    When ``delta`` is ``None`` (the first round) all homomorphisms into the
    full instance are used; otherwise the shared delta-pivot join of
    :func:`repro.engine.matching.iter_delta_joins` pins one body atom to the
    delta and joins the rest against the full instance.
    """
    facts: List[Tuple[str, Tuple]] = []
    # dedupe=False: grounding the head twice is idempotent here (the caller
    # checks membership before inserting), so the cross-pivot seen-set
    # would cost more than the duplicates it suppresses.
    for homomorphism in iter_delta_joins(matcher, rule.body,
                                         rule.body_variables(), instance, delta,
                                         dedupe=False):
        for atom in rule.head:
            grounded = apply_to_atom(homomorphism, atom)
            facts.append((grounded.predicate, grounded.to_fact_row()))
    return facts


def evaluate_plain_datalog(rules: Sequence[TGD], database: DatabaseInstance,
                           max_rounds: int = 10_000, engine: Optional[str] = None,
                           stats: Optional[EngineStats] = None) -> DatabaseInstance:
    """Compute the least model of ``rules`` over ``database``.

    The input database is not mutated; a fresh instance containing the
    extensional facts plus every derived fact is returned.  ``engine``
    selects the matching engine (``"indexed"``/``"naive"``, ``None`` = the
    process default); ``stats`` optionally collects the work done.
    """
    rules = list(rules)
    _check_plain(rules)
    matcher = matcher_for(engine, stats)
    program = DatalogProgram(tgds=rules, database=database.copy())
    program.ensure_relations()
    instance = program.database

    # Per-predicate dispatch: which rules can react to new facts of a predicate.
    body_predicates: List[Set[str]] = [rule.body_predicates() for rule in rules]

    # The columnar engine exposes the batched trigger path: whole head
    # batches instantiated off the joined binding table and bulk-inserted.
    batch = None
    contexts: Dict[int, Any] = {}
    if hasattr(matcher, "delta_binding_table"):
        from ..engine.triggers import seminaive_head_batches
        batch = seminaive_head_batches

    delta: Optional[List[Fact]] = None
    for _ in range(max_rounds):
        matcher.stats.rounds += 1
        delta_predicates: Optional[Set[str]] = None if delta is None else \
            {predicate for predicate, _ in delta}
        new_delta: List[Fact] = []
        produced = 0
        for index, rule in enumerate(rules):
            if delta_predicates is not None and \
                    not (body_predicates[index] & delta_predicates):
                matcher.stats.rules_skipped_by_delta += 1
                continue
            batches = batch(matcher, rule, instance, delta, contexts, index) \
                if batch is not None else None
            if batches is not None:
                for predicate, rows, code_rows in batches:
                    mask = instance.relation(predicate).add_many(rows, code_rows)
                    novel = [head_row for head_row, is_new in zip(rows, mask)
                             if is_new]
                    new_delta.extend((predicate, head_row)
                                     for head_row in novel)
                    produced += len(novel)
                    matcher.stats.triggers_fired += len(novel)
                continue
            # per-tuple: ok — fallback path for batch-ineligible rules/engines
            for predicate, row in _new_head_facts(rule, instance, delta, matcher):
                if row not in instance.relation(predicate):
                    instance.add(predicate, row)
                    new_delta.append((predicate, row))
                    produced += 1
                    matcher.stats.triggers_fired += 1
        if produced == 0:
            return instance
        delta = new_delta
    raise DatalogError(
        f"semi-naive evaluation did not reach a fixpoint within {max_rounds} rounds"
    )


def evaluate_program(program: DatalogProgram, max_rounds: int = 10_000,
                     engine: Optional[str] = None,
                     stats: Optional[EngineStats] = None) -> DatabaseInstance:
    """Semi-naive evaluation of a program's TGDs (which must be plain)."""
    return evaluate_plain_datalog(program.tgds, program.database,
                                  max_rounds=max_rounds, engine=engine, stats=stats)
