"""A textual syntax for Datalog± rules, facts and queries.

The syntax follows Prolog conventions:

* **Variables** start with an uppercase letter or ``_`` (``X``, ``Unit_1``).
* **Constants** are lowercase identifiers (``w1``), single- or double-quoted
  strings (``'Tom Waits'``), or numbers (``37.5``).
* **Atoms** are ``predicate(term, ..., term)``; a negated atom is written
  ``not predicate(...)``.
* **TGDs**: ``head1, head2 :- body1, ..., bodyn.`` — head variables not
  occurring in the body are existential; an optional explicit prefix
  ``exists Z1, Z2 : head :- body.`` is also accepted (and checked).
* **EGDs**: ``X = Y :- body.``
* **Negative constraints**: ``false :- body.`` (``bottom`` also accepted).
* **Facts**: ``predicate(c1, ..., cn).``
* **Comparisons** may appear in rule bodies and queries:
  ``X >= 'Sep/5-11:45'``, ``T != 'night'``.
* **Queries** (via :func:`parse_query`): ``?(X, Y) :- body.`` for an open
  query, ``? :- body.`` for a boolean query.  ``ans(X, Y) :- body.`` is
  accepted as a synonym.

Comments run from ``%`` or ``#`` to the end of the line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from ..errors import ParseError
from .atoms import Atom, COMPARISON_OPERATORS, Comparison
from .program import DatalogProgram
from .rules import EGD, ConjunctiveQuery, NegativeConstraint, TGD
from .terms import Constant, Term, Variable

_TOKEN_SPEC = [
    ("NUMBER", r"-?\d+(\.\d+)?"),
    ("STRING", r"'(?:[^'\\]|\\.)*'|\"(?:[^\"\\]|\\.)*\""),
    ("IDENT", r"[A-Za-z_][A-Za-z0-9_/\-]*"),
    ("IMPLIES", r":-|<-|←"),
    ("OP", r"!=|<=|>=|==|=|<|>"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("SEMI", r";"),
    ("COLON", r":"),
    ("DOT", r"\."),
    ("QMARK", r"\?"),
    ("BANG", r"!"),
    ("SKIP", r"[ \t\r\n]+"),
    ("COMMENT", r"[%#][^\n]*"),
    ("MISMATCH", r"."),
]
_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))

_NEGATION_KEYWORDS = {"not", "neg"}
_FALSE_KEYWORDS = {"false", "bottom", "bot"}
_EXISTS_KEYWORDS = {"exists", "exist"}
_QUERY_HEADS = {"ans", "q"}


@dataclass
class _Token:
    kind: str
    value: str
    position: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    for match in _TOKEN_RE.finditer(text):
        kind = match.lastgroup or "MISMATCH"
        value = match.group()
        if kind in ("SKIP", "COMMENT"):
            continue
        if kind == "MISMATCH":
            raise ParseError(f"unexpected character {value!r}", text, match.start())
        tokens.append(_Token(kind, value, match.start()))
    return tokens


class _TokenStream:
    def __init__(self, tokens: List[_Token], text: str):
        self.tokens = tokens
        self.text = text
        self.index = 0

    def peek(self, offset: int = 0) -> Optional[_Token]:
        position = self.index + offset
        return self.tokens[position] if position < len(self.tokens) else None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input", self.text, len(self.text))
        self.index += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> _Token:
        token = self.next()
        if token.kind != kind or (value is not None and token.value != value):
            expected = f"{kind}" + (f" {value!r}" if value else "")
            raise ParseError(
                f"expected {expected}, got {token.kind} {token.value!r}",
                self.text, token.position)
        return token

    def at_end(self) -> bool:
        return self.index >= len(self.tokens)


def _is_variable_name(name: str) -> bool:
    return bool(name) and (name[0].isupper() or name[0] == "_")


def _term_from_token(token: _Token) -> Term:
    if token.kind == "NUMBER":
        value = float(token.value) if "." in token.value else int(token.value)
        return Constant(value)
    if token.kind == "STRING":
        raw = token.value[1:-1]
        return Constant(raw.replace("\\'", "'").replace('\\"', '"'))
    if token.kind == "IDENT":
        if _is_variable_name(token.value):
            return Variable(token.value)
        return Constant(token.value)
    raise ParseError(f"cannot interpret token {token.value!r} as a term")


class _Parser:
    """Recursive-descent parser over a token stream."""

    def __init__(self, text: str):
        self.text = text
        self.stream = _TokenStream(_tokenize(text), text)

    # -- atoms and terms ----------------------------------------------------

    def parse_term(self) -> Term:
        token = self.stream.next()
        return _term_from_token(token)

    def parse_atom(self, allow_negation: bool = True) -> Atom:
        negated = False
        token = self.stream.peek()
        if token is not None and token.kind == "IDENT" and token.value.lower() in _NEGATION_KEYWORDS:
            if not allow_negation:
                raise ParseError("negation is not allowed here", self.text, token.position)
            self.stream.next()
            negated = True
        name_token = self.stream.expect("IDENT")
        predicate = name_token.value
        self.stream.expect("LPAREN")
        terms: List[Term] = []
        if self.stream.peek() is not None and self.stream.peek().kind != "RPAREN":
            terms.append(self.parse_term())
            while self.stream.peek() is not None and self.stream.peek().kind == "COMMA":
                self.stream.next()
                terms.append(self.parse_term())
        self.stream.expect("RPAREN")
        return Atom(predicate, terms, negated=negated)

    def _looks_like_atom(self) -> bool:
        token = self.stream.peek()
        after = self.stream.peek(1)
        if token is None or token.kind != "IDENT":
            return False
        if token.value.lower() in _NEGATION_KEYWORDS:
            return True
        return after is not None and after.kind == "LPAREN"

    def _looks_like_comparison(self) -> bool:
        # term OP term — where the first token is a term-ish token followed
        # by a comparison operator.
        token = self.stream.peek()
        after = self.stream.peek(1)
        if token is None or after is None:
            return False
        if token.kind not in ("IDENT", "NUMBER", "STRING"):
            return False
        return after.kind == "OP"

    def parse_comparison(self) -> Comparison:
        left = self.parse_term()
        op_token = self.stream.expect("OP")
        right = self.parse_term()
        if op_token.value not in COMPARISON_OPERATORS:
            raise ParseError(f"unknown comparison operator {op_token.value!r}",
                             self.text, op_token.position)
        return Comparison(op_token.value, left, right)

    def parse_body(self, allow_negation: bool = True) -> Tuple[List[Atom], List[Comparison]]:
        atoms: List[Atom] = []
        comparisons: List[Comparison] = []
        while True:
            if self._looks_like_atom():
                atoms.append(self.parse_atom(allow_negation=allow_negation))
            elif self._looks_like_comparison():
                comparisons.append(self.parse_comparison())
            else:
                token = self.stream.peek()
                raise ParseError("expected an atom or a comparison",
                                 self.text, token.position if token else len(self.text))
            token = self.stream.peek()
            if token is not None and token.kind == "COMMA":
                self.stream.next()
                continue
            break
        return atoms, comparisons

    # -- statements ---------------------------------------------------------

    def parse_statement(self) -> Union[TGD, EGD, NegativeConstraint, Atom]:
        """Parse one statement up to (and including) its terminating dot."""
        token = self.stream.peek()
        if token is None:
            raise ParseError("empty statement", self.text, len(self.text))

        # Explicit existential prefix: exists Z1, Z2 : head :- body.
        declared_existentials: List[Variable] = []
        if token.kind == "IDENT" and token.value.lower() in _EXISTS_KEYWORDS:
            self.stream.next()
            declared_existentials.append(self._parse_variable())
            while self.stream.peek() is not None and self.stream.peek().kind == "COMMA":
                self.stream.next()
                declared_existentials.append(self._parse_variable())
            nxt = self.stream.peek()
            if nxt is not None and nxt.kind == "COLON":
                self.stream.next()

        # Negative constraint: false :- body.
        token = self.stream.peek()
        if token is not None and token.kind == "IDENT" and \
                token.value.lower() in _FALSE_KEYWORDS and \
                (self.stream.peek(1) is None or self.stream.peek(1).kind != "LPAREN"):
            self.stream.next()
            self.stream.expect("IMPLIES")
            atoms, comparisons = self.parse_body(allow_negation=True)
            self.stream.expect("DOT")
            return NegativeConstraint(atoms, comparisons)

        # EGD: X = Y :- body.
        if self._looks_like_comparison():
            comparison = self.parse_comparison()
            if comparison.op not in ("=", "=="):
                raise ParseError(
                    f"only equality may appear in a rule head, got {comparison.op!r}",
                    self.text, token.position)
            self.stream.expect("IMPLIES")
            atoms, comparisons = self.parse_body(allow_negation=False)
            if comparisons:
                raise ParseError("comparisons are not supported in EGD bodies",
                                 self.text, token.position)
            self.stream.expect("DOT")
            return EGD(comparison.left, comparison.right, atoms)

        # TGD or fact: head atoms, optionally ':- body'.
        head_atoms = [self.parse_atom(allow_negation=False)]
        while self.stream.peek() is not None and self.stream.peek().kind == "COMMA":
            self.stream.next()
            head_atoms.append(self.parse_atom(allow_negation=False))

        nxt = self.stream.peek()
        if nxt is not None and nxt.kind == "IMPLIES":
            self.stream.next()
            body_atoms, comparisons = self.parse_body(allow_negation=False)
            if comparisons:
                raise ParseError("comparisons are not supported in TGD bodies",
                                 self.text, nxt.position)
            self.stream.expect("DOT")
            tgd = TGD(head_atoms, body_atoms)
            if declared_existentials:
                actual = set(tgd.existential_variables())
                declared = set(declared_existentials)
                if declared - actual:
                    raise ParseError(
                        f"declared existential variables {sorted(v.name for v in declared - actual)} "
                        "also occur in the rule body", self.text, nxt.position)
            return tgd

        # A fact.
        self.stream.expect("DOT")
        if len(head_atoms) != 1:
            raise ParseError("a fact must be a single atom", self.text,
                             token.position if token else 0)
        fact = head_atoms[0]
        if not fact.is_ground():
            raise ParseError(f"fact {fact} contains variables", self.text,
                             token.position if token else 0)
        return fact

    def _parse_variable(self) -> Variable:
        token = self.stream.expect("IDENT")
        if not _is_variable_name(token.value):
            raise ParseError(f"expected a variable, got {token.value!r}",
                             self.text, token.position)
        return Variable(token.value)

    def parse_statements(self) -> List[Union[TGD, EGD, NegativeConstraint, Atom]]:
        statements = []
        while not self.stream.at_end():
            statements.append(self.parse_statement())
        return statements

    def parse_query(self) -> ConjunctiveQuery:
        token = self.stream.peek()
        if token is None:
            raise ParseError("empty query", self.text, 0)
        answer_variables: List[Variable] = []
        name = "Q"
        if token.kind == "QMARK":
            self.stream.next()
            nxt = self.stream.peek()
            if nxt is not None and nxt.kind == "LPAREN":
                self.stream.next()
                if self.stream.peek() is not None and self.stream.peek().kind != "RPAREN":
                    answer_variables.append(self._parse_variable())
                    while self.stream.peek() is not None and self.stream.peek().kind == "COMMA":
                        self.stream.next()
                        answer_variables.append(self._parse_variable())
                self.stream.expect("RPAREN")
        elif token.kind == "IDENT" and token.value.lower() in _QUERY_HEADS:
            self.stream.next()
            name = token.value
            self.stream.expect("LPAREN")
            if self.stream.peek() is not None and self.stream.peek().kind != "RPAREN":
                answer_variables.append(self._parse_variable())
                while self.stream.peek() is not None and self.stream.peek().kind == "COMMA":
                    self.stream.next()
                    answer_variables.append(self._parse_variable())
            self.stream.expect("RPAREN")
        else:
            raise ParseError("a query must start with '?' or 'ans(...)'",
                             self.text, token.position)
        self.stream.expect("IMPLIES")
        atoms, comparisons = self.parse_body(allow_negation=False)
        if self.stream.peek() is not None and self.stream.peek().kind == "DOT":
            self.stream.next()
        if not self.stream.at_end():
            leftover = self.stream.peek()
            raise ParseError("unexpected trailing input after query",
                             self.text, leftover.position if leftover else len(self.text))
        return ConjunctiveQuery(answer_variables, atoms, comparisons, name=name)


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------

def parse_statements(text: str) -> List[Union[TGD, EGD, NegativeConstraint, Atom]]:
    """Parse a sequence of rules, constraints and facts."""
    return _Parser(text).parse_statements()


def parse_rule(text: str) -> Union[TGD, EGD, NegativeConstraint]:
    """Parse a single rule or constraint (must not be a fact)."""
    statements = parse_statements(text)
    if len(statements) != 1:
        raise ParseError(f"expected exactly one statement, got {len(statements)}", text)
    statement = statements[0]
    if isinstance(statement, Atom):
        raise ParseError("expected a rule, got a fact", text)
    return statement


def parse_atom(text: str) -> Atom:
    """Parse a single atom, which may contain variables (no trailing dot)."""
    parser = _Parser(text)
    atom = parser.parse_atom(allow_negation=True)
    if parser.stream.peek() is not None and parser.stream.peek().kind == "DOT":
        parser.stream.next()
    if not parser.stream.at_end():
        leftover = parser.stream.peek()
        raise ParseError("unexpected trailing input after atom", text,
                         leftover.position if leftover else len(text))
    return atom


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a conjunctive query (``?(X) :- body.`` or ``? :- body.``)."""
    return _Parser(text).parse_query()


def parse_program(text: str, database=None) -> DatalogProgram:
    """Parse a whole program: rules, constraints and facts.

    Facts appearing in the text are loaded into the program's database
    (which may be supplied by the caller and is extended in place).
    """
    program = DatalogProgram(database=database)
    for statement in parse_statements(text):
        if isinstance(statement, Atom):
            program.add_atom_fact(statement)
        else:
            program.add_rules([statement])
    return program
