"""A from-scratch Datalog± engine.

The engine provides the ontological language the paper's multidimensional
contexts are written in: TGDs with existential quantification, EGDs,
negative constraints, the chase, syntactic class analysis (linear, guarded,
sticky, weakly sticky, weakly acyclic), EGD separability, chase-based
certain-answer query answering, the deterministic weakly-sticky
query-answering algorithm of Section IV, and first-order (UCQ) query
rewriting for non-recursive rule sets.
"""

from .terms import Constant, Null, NullFactory, Variable
from .atoms import Atom, Comparison
from .rules import EGD, ConjunctiveQuery, NegativeConstraint, TGD, plain_rule
from .program import DatalogProgram
from .parser import parse_atom, parse_program, parse_query, parse_rule, parse_statements
from .chase import ChaseEngine, ChaseResult, ConstraintViolation, chase, OBLIVIOUS, RESTRICTED
from .seminaive import evaluate_plain_datalog, evaluate_program
from .classes import (ClassReport, classify, compute_sticky_marking, is_guarded,
                      is_linear, is_non_recursive, is_sticky, is_weakly_acyclic,
                      is_weakly_sticky)
from .graphs import PositionGraph, PredicateGraph, build_position_graph, build_predicate_graph
from .separability import (SeparabilityReport, check_separability_empirically,
                           egd_separability_report, null_prone_positions)
from .answering import (certain_answers, certainly_holds, evaluate_boolean_query,
                        evaluate_query)
from .ws_qa import (DeterministicWSQAns, ResolutionStatistics, deterministic_ws_answers,
                    deterministic_ws_holds)
from .rewriting import QueryRewriter, Rewriting, rewrite_and_answer

__all__ = [
    "Constant", "Null", "NullFactory", "Variable",
    "Atom", "Comparison",
    "EGD", "ConjunctiveQuery", "NegativeConstraint", "TGD", "plain_rule",
    "DatalogProgram",
    "parse_atom", "parse_program", "parse_query", "parse_rule", "parse_statements",
    "ChaseEngine", "ChaseResult", "ConstraintViolation", "chase", "OBLIVIOUS", "RESTRICTED",
    "evaluate_plain_datalog", "evaluate_program",
    "ClassReport", "classify", "compute_sticky_marking", "is_guarded", "is_linear",
    "is_non_recursive", "is_sticky", "is_weakly_acyclic", "is_weakly_sticky",
    "PositionGraph", "PredicateGraph", "build_position_graph", "build_predicate_graph",
    "SeparabilityReport", "check_separability_empirically", "egd_separability_report",
    "null_prone_positions",
    "certain_answers", "certainly_holds", "evaluate_boolean_query", "evaluate_query",
    "DeterministicWSQAns", "ResolutionStatistics", "deterministic_ws_answers",
    "deterministic_ws_holds",
    "QueryRewriter", "Rewriting", "rewrite_and_answer",
]
