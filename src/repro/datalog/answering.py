"""Certain-answer conjunctive query answering via the chase.

For Datalog± programs whose chase terminates (which includes the paper's MD
ontologies, cf. Section III), the certain answers to a conjunctive query are
obtained by

1. chasing the extensional database with the TGDs (and EGDs), and
2. evaluating the query over the chased instance, keeping only the answer
   tuples made of **constants** (tuples containing labeled nulls are not
   certain: the nulls stand for unknown values).

Boolean queries are certain iff the query body has at least one match in the
chased instance.  This module is the reference oracle that the deterministic
weakly-sticky algorithm (:mod:`repro.datalog.ws_qa`) and the first-order
rewriting (:mod:`repro.datalog.rewriting`) are validated against.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

from ..engine.matching import Matcher, matcher_for
from ..engine.stats import EngineStats
from ..relational.instance import DatabaseInstance
from ..relational.values import Null
from .atoms import Atom
from .chase import ChaseResult
from .program import DatalogProgram
from .rules import ConjunctiveQuery
from .terms import term_value
from .unify import apply_to_term

AnswerTuple = Tuple[Any, ...]

#: Support counts of a query's answers: each projected answer row (which may
#: contain labeled nulls) mapped to the number of distinct body valuations
#: (homomorphisms) deriving it.  This is the plan-shaped representation the
#: session layer maintains incrementally: an insert/delete delta changes the
#: counts by ±1 per affected valuation, and a row is an answer iff its count
#: is positive — no re-join needed.
AnswerCounts = Dict[AnswerTuple, int]


def evaluate_query_counts(query: ConjunctiveQuery, instance: DatabaseInstance,
                          engine: Optional[str] = None,
                          stats: Optional[EngineStats] = None,
                          matcher: Optional[Matcher] = None,
                          plan: Optional[Sequence[Atom]] = None) -> AnswerCounts:
    """Answer support counts of ``query`` over ``instance``.

    Each homomorphism from the body into the instance is a distinct
    valuation of the body variables (set semantics: distinct matched rows
    imply distinct valuations), so counting homomorphisms per projected
    answer row gives the exact derivation multiset counting-based view
    maintenance needs.  ``matcher`` (with an optional precomputed ``plan``,
    replayed with ``preordered=True``) lets session callers reuse their
    cached plumbing; otherwise a matcher is built for ``engine``.
    """
    if matcher is None:
        matcher = matcher_for(engine, stats)
    atoms: Sequence[Atom] = query.body if plan is None else plan
    batch = getattr(matcher, "answer_counts", None)
    if batch is not None:
        # The columnar engine projects and counts in batch, never
        # materializing substitution dicts; ``None`` means it could not
        # take the query (variable-valued seed) and we fall through.
        counted = batch(atoms, instance, query.answer_variables,
                        comparisons=query.comparisons,
                        preordered=plan is not None)
        if counted is not None:
            return counted
    counts: AnswerCounts = {}
    for homomorphism in matcher.find_homomorphisms(
            atoms, instance, comparisons=query.comparisons,
            preordered=plan is not None):
        row = tuple(
            term_value(apply_to_term(homomorphism, variable))
            for variable in query.answer_variables
        )
        counts[row] = counts.get(row, 0) + 1
    return counts


def rows_from_counts(counts: AnswerCounts,
                     allow_nulls: bool = False) -> Tuple[AnswerTuple, ...]:
    """The (sorted, deduplicated) answer rows of a support-count multiset.

    ``allow_nulls=False`` applies the certain-answer semantics: rows
    containing labeled nulls are dropped.  Returns an immutable tuple — the
    session layer hands it out on cache hits without copying.
    """
    rows = counts if allow_nulls else \
        [row for row in counts
         if not any(isinstance(value, Null) for value in row)]
    return tuple(sorted(rows, key=lambda row: tuple(map(str, row))))


def evaluate_query(query: ConjunctiveQuery, instance: DatabaseInstance,
                   allow_nulls: bool = False, engine: Optional[str] = None,
                   stats: Optional[EngineStats] = None) -> Tuple[AnswerTuple, ...]:
    """Evaluate ``query`` over ``instance``.

    With ``allow_nulls=False`` (the certain-answer semantics) only answer
    tuples consisting entirely of constants are returned.  With
    ``allow_nulls=True`` the raw matches are returned, which is what the
    quality-version materialization needs (nulls stand for unknown
    non-categorical values and are kept in quality relations, cf. Example 5).

    Matching goes through the shared engine (``engine="indexed"`` by
    default; pass ``"naive"`` for the row-scanning reference).  An optional
    ``stats`` object accumulates the matching work done.  Answers are an
    immutable, canonically sorted tuple (shared freely by caches).
    """
    return rows_from_counts(
        evaluate_query_counts(query, instance, engine=engine, stats=stats),
        allow_nulls=allow_nulls)


def evaluate_boolean_query(query: ConjunctiveQuery, instance: DatabaseInstance,
                           engine: Optional[str] = None,
                           stats: Optional[EngineStats] = None) -> bool:
    """``True`` iff the (boolean) query body has a match in ``instance``."""
    matcher = matcher_for(engine, stats)
    for _ in matcher.find_homomorphisms(query.body, instance,
                                        comparisons=query.comparisons):
        return True
    return False


def certain_answers(program: DatalogProgram, query: ConjunctiveQuery,
                    max_steps: int = 100_000,
                    chase_result: Optional[ChaseResult] = None,
                    engine: Optional[str] = None) -> Tuple[AnswerTuple, ...]:
    """Certain answers of ``query`` over ``program`` via the chase.

    A pre-computed ``chase_result`` may be supplied to amortize the chase
    across many queries (the benchmark harness does this).  Otherwise this
    is a thin wrapper over a one-shot materialization session
    (:mod:`repro.engine.session`); workloads that chase once, then answer
    many queries while the data changes, should hold a
    :class:`~repro.engine.session.MaterializedProgram` +
    :class:`~repro.engine.session.QuerySession` directly.  ``engine``
    selects the matching engine for both the chase and the evaluation.
    """
    if chase_result is None:
        from ..engine.session import MaterializedProgram
        materialized = MaterializedProgram(program, engine=engine,
                                           max_steps=max_steps,
                                           record_provenance=False)
        return materialized.certain_answers(query)
    return evaluate_query(query, chase_result.instance, allow_nulls=False,
                          engine=engine)


def certainly_holds(program: DatalogProgram, query: ConjunctiveQuery,
                    max_steps: int = 100_000,
                    chase_result: Optional[ChaseResult] = None,
                    engine: Optional[str] = None) -> bool:
    """Certain answer of a boolean query over ``program`` via the chase.

    Thin wrapper over a one-shot session when no ``chase_result`` is given
    (see :func:`certain_answers`).
    """
    if chase_result is None:
        from ..engine.session import MaterializedProgram
        materialized = MaterializedProgram(program, engine=engine,
                                           max_steps=max_steps,
                                           record_provenance=False)
        return materialized.holds(query)
    return evaluate_boolean_query(query, chase_result.instance, engine=engine)
