"""Atoms and comparison (built-in) atoms of the Datalog± language."""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Sequence, Set, Tuple

from ..errors import DatalogError
from .terms import Constant, Null, Term, Variable, term_value, to_term


@dataclass(frozen=True)
class Atom:
    """A relational atom ``P(t1, ..., tn)``.

    ``negated`` marks negative body literals (``¬P(...)``); the paper only
    uses these in referential negative constraints of form (1), and the
    engine only allows them in constraint bodies, never in TGD bodies.
    """

    predicate: str
    terms: Tuple[Term, ...]
    negated: bool = False

    def __init__(self, predicate: str, terms: Sequence[Any], negated: bool = False):
        if not predicate:
            raise DatalogError("atom predicate must be a non-empty string")
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "terms", tuple(to_term(t) for t in terms))
        object.__setattr__(self, "negated", bool(negated))

    # -- inspection ---------------------------------------------------------

    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.terms)

    def variables(self) -> List[Variable]:
        """Variables of the atom, in order of first occurrence."""
        seen: List[Variable] = []
        for term in self.terms:
            if isinstance(term, Variable) and term not in seen:
                seen.append(term)
        return seen

    def constants(self) -> List[Constant]:
        """Constants of the atom, in order of first occurrence."""
        seen: List[Constant] = []
        for term in self.terms:
            if isinstance(term, Constant) and term not in seen:
                seen.append(term)
        return seen

    def is_ground(self) -> bool:
        """``True`` if the atom contains no variables."""
        return all(not isinstance(term, Variable) for term in self.terms)

    def positions(self) -> List[Tuple[str, int]]:
        """The positions ``(predicate, index)`` of the atom, 0-based."""
        return [(self.predicate, index) for index in range(self.arity)]

    def positions_of(self, variable: Variable) -> List[Tuple[str, int]]:
        """Positions at which ``variable`` occurs in this atom."""
        return [
            (self.predicate, index)
            for index, term in enumerate(self.terms)
            if term == variable
        ]

    # -- construction helpers ----------------------------------------------

    def negate(self) -> "Atom":
        """Return the same atom with the opposite polarity."""
        return Atom(self.predicate, self.terms, negated=not self.negated)

    def positive(self) -> "Atom":
        """Return the positive version of this atom."""
        if not self.negated:
            return self
        return Atom(self.predicate, self.terms, negated=False)

    def with_terms(self, terms: Sequence[Any]) -> "Atom":
        """Return an atom over the same predicate with different terms."""
        return Atom(self.predicate, terms, negated=self.negated)

    def to_fact_row(self) -> Tuple[Any, ...]:
        """Convert a ground atom into a storable tuple of values."""
        if not self.is_ground():
            raise DatalogError(f"cannot convert non-ground atom {self} to a fact row")
        return tuple(term_value(term) for term in self.terms)

    @staticmethod
    def fact(predicate: str, row: Sequence[Any]) -> "Atom":
        """Build a ground atom from a relation name and a tuple of values."""
        return Atom(predicate, [to_term(value) for value in row])

    def __str__(self) -> str:
        body = f"{self.predicate}({', '.join(str(t) for t in self.terms)})"
        return f"not {body}" if self.negated else body


#: Comparison operators supported in query bodies and constraint bodies.
COMPARISON_OPERATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


@dataclass(frozen=True)
class Comparison:
    """A built-in comparison atom, e.g. ``t >= 'Sep/5-11:45'`` or ``x = y``.

    Comparisons never generate bindings; they filter candidate substitutions
    once both sides are ground.  Comparing a labeled null with anything other
    than itself under ``=`` yields ``False`` (nulls are unknown values).
    """

    op: str
    left: Term
    right: Term

    def __init__(self, op: str, left: Any, right: Any):
        if op not in COMPARISON_OPERATORS:
            raise DatalogError(
                f"unsupported comparison operator {op!r}; "
                f"supported: {sorted(COMPARISON_OPERATORS)}"
            )
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "left", to_term(left))
        object.__setattr__(self, "right", to_term(right))

    def variables(self) -> List[Variable]:
        """Variables occurring in the comparison."""
        result = []
        for term in (self.left, self.right):
            if isinstance(term, Variable) and term not in result:
                result.append(term)
        return result

    def evaluate(self, left_value: Any, right_value: Any) -> bool:
        """Evaluate the comparison on two ground values."""
        if isinstance(left_value, Null) or isinstance(right_value, Null):
            if self.op in ("=", "=="):
                return left_value == right_value
            if self.op == "!=":
                return left_value != right_value
            return False
        try:
            return COMPARISON_OPERATORS[self.op](left_value, right_value)
        except TypeError:
            # Incomparable types (e.g. int vs str): fall back to string order
            # for ordering operators, strict inequality for equality.
            if self.op in ("=", "=="):
                return False
            if self.op == "!=":
                return True
            return COMPARISON_OPERATORS[self.op](str(left_value), str(right_value))

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


def atoms_variables(atoms: Iterable[Atom]) -> List[Variable]:
    """Variables of a sequence of atoms, in order of first occurrence."""
    seen: List[Variable] = []
    for atom in atoms:
        for variable in atom.variables():
            if variable not in seen:
                seen.append(variable)
    return seen


def atoms_positions_of(atoms: Iterable[Atom], variable: Variable) -> Set[Tuple[str, int]]:
    """All positions at which ``variable`` occurs across ``atoms``."""
    positions: Set[Tuple[str, int]] = set()
    for atom in atoms:
        positions.update(atom.positions_of(variable))
    return positions
