"""Syntactic classes of Datalog± programs.

The paper (Sections II–III) relies on the hierarchy of "good" Datalog±
classes for which conjunctive query answering is decidable and, for the
classes used here, tractable in data complexity:

* **linear** — every TGD has a single body atom;
* **guarded** — every TGD has a body atom (a guard) containing all the
  universal variables of the body;
* **sticky** — the marking procedure of Calì–Gottlob–Pieris marks body
  variable occurrences that may be "lost" during resolution; a program is
  sticky when no marked variable occurs more than once in a body;
* **weakly sticky** — the relaxation used by the paper: a variable that
  occurs more than once in a body must be non-marked **or** occur at some
  position of *finite rank* (see :mod:`repro.datalog.graphs`);
* **weakly acyclic** — no cycle through a special edge in the position
  graph; guarantees chase termination.

The central theoretical claim reproduced here (Section III) is that MD
ontologies with dimensional rules of forms (1)–(4) and (10) are weakly
sticky; :mod:`repro.ontology.analysis` applies these checks to compiled MD
ontologies and the test-suite verifies the claim on the hospital ontology
and on synthetic ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from .graphs import Position, build_position_graph, build_predicate_graph
from .rules import TGD
from .terms import Variable

#: A marked occurrence is (rule index, atom index within the body, position index).
MarkedOccurrence = Tuple[int, int, int]


@dataclass
class StickyMarking:
    """Result of the sticky-marking procedure over a set of TGDs."""

    tgds: Tuple[TGD, ...]
    #: marked body-variable occurrences, as (rule, body atom, argument) indices
    marked_occurrences: FrozenSet[MarkedOccurrence]
    #: positions (predicate, index) that carry a marked variable in some body
    marked_positions: FrozenSet[Position]

    def marked_variables(self, rule_index: int) -> Set[Variable]:
        """Variables of rule ``rule_index`` with at least one marked occurrence."""
        rule = self.tgds[rule_index]
        result: Set[Variable] = set()
        for (r_index, atom_index, arg_index) in self.marked_occurrences:
            if r_index != rule_index:
                continue
            term = rule.body[atom_index].terms[arg_index]
            if isinstance(term, Variable):
                result.add(term)
        return result


def compute_sticky_marking(tgds: Sequence[TGD]) -> StickyMarking:
    """Run the sticky-marking propagation of Calì–Gottlob–Pieris.

    Initial step: in every TGD, mark each body occurrence of a variable that
    does **not** appear in the head.  Propagation step: if a variable appears
    in the head of a TGD at position π, and π is a marked position (i.e. some
    marked occurrence in any rule body is at π), then mark all body
    occurrences of that variable in the TGD.  Repeat until fixpoint.
    """
    tgds = tuple(tgds)
    marked: Set[MarkedOccurrence] = set()

    def occurrences_of(rule_index: int, variable: Variable) -> List[MarkedOccurrence]:
        rule = tgds[rule_index]
        found = []
        for atom_index, atom in enumerate(rule.body):
            for arg_index, term in enumerate(atom.terms):
                if term == variable:
                    found.append((rule_index, atom_index, arg_index))
        return found

    # Initial marking.
    for rule_index, rule in enumerate(tgds):
        head_variables = set(rule.head_variables())
        for variable in rule.body_variables():
            if variable not in head_variables:
                marked.update(occurrences_of(rule_index, variable))

    def marked_positions_of(current: Set[MarkedOccurrence]) -> Set[Position]:
        positions: Set[Position] = set()
        for (rule_index, atom_index, arg_index) in current:
            atom = tgds[rule_index].body[atom_index]
            positions.add((atom.predicate, arg_index))
        return positions

    # Propagation to fixpoint.
    changed = True
    while changed:
        changed = False
        positions = marked_positions_of(marked)
        for rule_index, rule in enumerate(tgds):
            for variable in rule.frontier_variables():
                appears_at_marked_position = any(
                    (atom.predicate, arg_index) in positions
                    for atom in rule.head
                    for arg_index, term in enumerate(atom.terms)
                    if term == variable
                )
                if not appears_at_marked_position:
                    continue
                for occurrence in occurrences_of(rule_index, variable):
                    if occurrence not in marked:
                        marked.add(occurrence)
                        changed = True

    return StickyMarking(
        tgds=tgds,
        marked_occurrences=frozenset(marked),
        marked_positions=frozenset(marked_positions_of(marked)),
    )


@dataclass
class ClassReport:
    """Membership report of a TGD set in the Datalog± class hierarchy."""

    is_linear: bool
    is_guarded: bool
    is_sticky: bool
    is_weakly_sticky: bool
    is_weakly_acyclic: bool
    finite_rank_positions: FrozenSet[Position]
    infinite_rank_positions: FrozenSet[Position]
    sticky_witness: str = ""
    weakly_sticky_witness: str = ""

    def summary(self) -> Dict[str, bool]:
        """Class membership as a plain dictionary (for reports and benches)."""
        return {
            "linear": self.is_linear,
            "guarded": self.is_guarded,
            "sticky": self.is_sticky,
            "weakly_sticky": self.is_weakly_sticky,
            "weakly_acyclic": self.is_weakly_acyclic,
        }


def is_linear(tgds: Sequence[TGD]) -> bool:
    """Every TGD has exactly one body atom."""
    return all(len(tgd.body) == 1 for tgd in tgds)


def is_guarded(tgds: Sequence[TGD]) -> bool:
    """Every TGD has a body atom containing all universal body variables."""
    for tgd in tgds:
        body_variables = set(tgd.body_variables())
        if not any(set(atom.variables()) >= body_variables for atom in tgd.body):
            return False
    return True


def _sticky_violations(tgds: Sequence[TGD], marking: StickyMarking
                       ) -> List[Tuple[int, Variable]]:
    """(rule index, variable) pairs where a marked variable is a join variable."""
    violations = []
    for rule_index, rule in enumerate(tgds):
        marked_variables = marking.marked_variables(rule_index)
        for variable in rule.join_variables():
            if variable in marked_variables:
                violations.append((rule_index, variable))
    return violations


def is_sticky(tgds: Sequence[TGD]) -> bool:
    """No TGD has a marked variable occurring more than once in its body."""
    marking = compute_sticky_marking(tgds)
    return not _sticky_violations(tgds, marking)


def is_weakly_sticky(tgds: Sequence[TGD]) -> bool:
    """Marked join variables must occur at some finite-rank position."""
    return classify(tgds).is_weakly_sticky


def is_weakly_acyclic(tgds: Sequence[TGD]) -> bool:
    """No cycle through a special edge in the position graph."""
    return build_position_graph(tgds).is_weakly_acyclic()


def classify(tgds: Sequence[TGD]) -> ClassReport:
    """Full class-membership report for a set of TGDs."""
    tgds = list(tgds)
    marking = compute_sticky_marking(tgds)
    graph = build_position_graph(tgds)
    finite_rank = graph.finite_rank_positions()
    infinite_rank = graph.infinite_rank_positions()

    sticky_violations = _sticky_violations(tgds, marking)
    sticky = not sticky_violations

    weakly_sticky = True
    weakly_sticky_witness = ""
    for rule_index, variable in sticky_violations:
        rule = tgds[rule_index]
        positions = {
            (atom.predicate, arg_index)
            for atom in rule.body
            for arg_index, term in enumerate(atom.terms)
            if term == variable
        }
        if not positions & finite_rank:
            weakly_sticky = False
            weakly_sticky_witness = (
                f"rule {rule_index} ({rule}) joins marked variable {variable} "
                f"only at infinite-rank positions {sorted(positions)}"
            )
            break

    sticky_witness = ""
    if sticky_violations:
        rule_index, variable = sticky_violations[0]
        sticky_witness = (
            f"rule {rule_index} ({tgds[rule_index]}) joins marked variable {variable}"
        )

    return ClassReport(
        is_linear=is_linear(tgds),
        is_guarded=is_guarded(tgds),
        is_sticky=sticky,
        is_weakly_sticky=weakly_sticky,
        is_weakly_acyclic=graph.is_weakly_acyclic(),
        finite_rank_positions=frozenset(finite_rank),
        infinite_rank_positions=frozenset(infinite_rank),
        sticky_witness=sticky_witness,
        weakly_sticky_witness=weakly_sticky_witness,
    )


def is_non_recursive(tgds: Sequence[TGD]) -> bool:
    """``True`` if the predicate dependency graph is acyclic.

    Non-recursive rule sets admit a complete unfolding-based first-order
    rewriting (used by :mod:`repro.datalog.rewriting` for the paper's
    upward-navigation-only MD ontologies).
    """
    return not build_predicate_graph(tgds).is_recursive()
