"""``DeterministicWSQAns`` — deterministic query answering for weakly-sticky Datalog±.

Section IV of the paper describes a deterministic algorithm, derived from the
non-deterministic ``WeaklyStickyQAns`` of Calì–Gottlob–Pieris, that decides
boolean conjunctive queries over weakly-sticky programs by building an
*accepting resolution proof schema*: a tree whose root is the query, whose
leaves are extensional facts, and whose internal nodes are TGD applications.
The deterministic version explores candidate proof trees top-down,
left-to-right, with backtracking; candidate substitutions are drawn from the
ground atoms of the extensional database (instead of being guessed), which
also makes the extension to *open* conjunctive queries straightforward:
enumerate all accepting proofs and read the bindings of the answer
variables.

This implementation follows that description:

* a goal atom is **resolved** either against an extensional fact, against an
  atom derived earlier in the same proof (needed for rules with multi-atom
  heads such as form (10)), or against the head of a TGD — in which case the
  rule body becomes a new subtree of goals;
* existential variables of an applied TGD are replaced by fresh placeholder
  nulls; a placeholder never unifies with a constant, mirroring the fact that
  the chase would put a fresh labeled null there;
* the search is depth-bounded (rule applications per proof branch).  For the
  weakly-sticky MD ontologies of the paper a small bound suffices because
  dimensional navigation cannot cycle through category levels; the bound is
  configurable for other programs.

The algorithm is validated against chase-based certain answers
(:mod:`repro.datalog.answering`) throughout the test-suite, as the paper's
authors validate theirs against the chase semantics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..engine.matching import matcher_for
from ..engine.stats import EngineStats
from ..relational.values import Null
from .atoms import Atom
from .program import DatalogProgram
from .rules import ConjunctiveQuery, TGD
from .terms import Term, Variable, term_value
from .unify import (Substitution, apply_to_atom, apply_to_term, evaluate_comparisons,
                    unify_atoms)


@dataclass
class ResolutionStatistics:
    """Counters describing one run of the proof search."""

    resolution_steps: int = 0
    fact_resolutions: int = 0
    rule_applications: int = 0
    derived_resolutions: int = 0
    proofs_found: int = 0
    depth_cutoffs: int = 0


@dataclass
class _ProofState:
    """The mutable search state threaded through the backtracking search."""

    substitution: Substitution
    derived: Tuple[Atom, ...]
    depth: int


class DeterministicWSQAns:
    """Deterministic top-down query answering for weakly-sticky programs.

    Parameters
    ----------
    program:
        The Datalog± program (TGDs + extensional database).  EGDs and
        negative constraints are ignored here: the paper treats them as
        separable integrity constraints, checked once on the data
        (cf. :mod:`repro.datalog.separability`).
    max_depth:
        Maximum number of TGD applications along one proof branch.  Defaults
        to ``3 * len(tgds) + 8``, which comfortably covers dimensional
        navigation across the category hierarchies of MD ontologies.
    max_proofs:
        Optional cap on the number of accepting proofs enumerated when
        answering open queries (``None`` = exhaustive).
    engine:
        Matching engine for fact resolutions against the extensional
        database: ``"indexed"`` (default) probes hash indexes on the bound
        goal positions; ``"naive"`` is the row-scanning reference.
    """

    def __init__(self, program, max_depth: Optional[int] = None,
                 max_proofs: Optional[int] = None, engine: Optional[str] = None,
                 engine_stats: Optional[EngineStats] = None):
        if not isinstance(program, DatalogProgram):
            # A MaterializedProgram (repro.engine.session): resolve against
            # its extensional database — the solver's own search replays the
            # rules, so it must not see already-chased facts twice.
            program = program.edb_program()
        self.program = program
        self.max_depth = max_depth if max_depth is not None else 3 * len(program.tgds) + 8
        self.max_proofs = max_proofs
        self.statistics = ResolutionStatistics()
        self._matcher = matcher_for(engine, engine_stats)
        self.engine_stats = self._matcher.stats
        self._placeholder_counter = itertools.count(1)
        # Rules indexed by head predicate for fast candidate lookup.
        self._rules_by_head: Dict[str, List[Tuple[TGD, int]]] = {}
        for tgd in program.tgds:
            for head_index, atom in enumerate(tgd.head):
                self._rules_by_head.setdefault(atom.predicate, []).append((tgd, head_index))
        self._rename_counter = itertools.count(1)

    # -- public API ------------------------------------------------------------

    def holds(self, query: ConjunctiveQuery) -> bool:
        """Decide a boolean conjunctive query (Section IV's core problem)."""
        for _ in self._proofs(query):
            return True
        return False

    def answers(self, query: ConjunctiveQuery) -> Tuple[Tuple, ...]:
        """Certain answers of an open conjunctive query.

        All accepting resolution proofs are enumerated; the bindings of the
        answer variables are collected, and tuples containing placeholder
        nulls are discarded (they are not certain).  Answers are an
        immutable, canonically sorted tuple (same shape as every other
        answer surface in the repo).
        """
        if query.is_boolean():
            return ((),) if self.holds(query) else ()
        answers: Set[Tuple] = set()
        for substitution in self._proofs(query):
            row = tuple(
                term_value(apply_to_term(substitution, variable))
                for variable in query.answer_variables
            )
            if any(isinstance(value, Null) for value in row):
                continue
            answers.add(row)
            if self.max_proofs is not None and len(answers) >= self.max_proofs:
                break
        return tuple(sorted(answers, key=lambda row: tuple(map(str, row))))

    # -- proof search ------------------------------------------------------------

    def _proofs(self, query: ConjunctiveQuery) -> Iterator[Substitution]:
        goals = list(query.body)
        for substitution in self._prove(goals, {}, (), 0):
            if evaluate_comparisons(query.comparisons, substitution):
                self.statistics.proofs_found += 1
                yield substitution

    def _prove(self, goals: List[Atom], substitution: Substitution,
               derived: Tuple[Atom, ...], depth: int) -> Iterator[Substitution]:
        """Resolve ``goals`` left to right; yield every successful substitution."""
        if not goals:
            yield substitution
            return
        goal = apply_to_atom(substitution, goals[0])
        rest = goals[1:]
        self.statistics.resolution_steps += 1

        # (a) resolve against an extensional (or already chased) fact.
        for extended in self._matcher.match_atom(goal, self.program.database, substitution):
            self.statistics.fact_resolutions += 1
            yield from self._prove(rest, extended, derived, depth)

        # (b) resolve against an atom derived earlier in this proof branch
        #     (other head atoms of previously applied multi-head rules).
        for derived_atom in derived:
            unified = unify_atoms(goal, derived_atom, substitution)
            if unified is not None:
                self.statistics.derived_resolutions += 1
                yield from self._prove(rest, unified, derived, depth)

        # (c) resolve against a TGD head: the rule body becomes a subtree.
        if depth >= self.max_depth:
            self.statistics.depth_cutoffs += 1
            return
        for tgd, head_index in self._rules_by_head.get(goal.predicate, ()):
            renamed_head, renamed_body = self._rename_rule(tgd)
            unified = unify_atoms(goal, renamed_head[head_index], substitution)
            if unified is None:
                continue
            self.statistics.rule_applications += 1
            other_heads = tuple(
                apply_to_atom(unified, atom)
                for index, atom in enumerate(renamed_head)
                if index != head_index
            )
            new_goals = list(renamed_body) + rest
            yield from self._prove(new_goals, unified, derived + other_heads, depth + 1)

    def _rename_rule(self, tgd: TGD) -> Tuple[List[Atom], List[Atom]]:
        """Standardize a rule apart and freshen its existential variables.

        Universal variables get fresh variable names (so they cannot clash
        with query variables); existential variables become fresh placeholder
        nulls, which unify with variables but never with constants — exactly
        the behaviour of chase-invented nulls.
        """
        suffix = next(self._rename_counter)
        mapping: Dict[Variable, Term] = {}
        existentials = set(tgd.existential_variables())
        for variable in (*tgd.body_variables(), *tgd.head_variables()):
            if variable in mapping:
                continue
            if variable in existentials:
                mapping[variable] = Null(f"e{next(self._placeholder_counter)}")
            else:
                mapping[variable] = Variable(f"{variable.name}__r{suffix}")
        head = [apply_to_atom(mapping, atom) for atom in tgd.head]
        body = [apply_to_atom(mapping, atom) for atom in tgd.body]
        return head, body


def deterministic_ws_answers(program, query: ConjunctiveQuery,
                             max_depth: Optional[int] = None,
                             engine: Optional[str] = None) -> Tuple[Tuple, ...]:
    """Convenience wrapper: answer ``query`` with a one-off solver.

    ``program`` may be a :class:`DatalogProgram` or a
    :class:`~repro.engine.session.MaterializedProgram`; sessions that answer
    many queries should use
    :meth:`~repro.engine.session.QuerySession.ws_answers`, which caches the
    solver across calls.
    """
    solver = DeterministicWSQAns(program, max_depth=max_depth, engine=engine)
    return solver.answers(query)


def deterministic_ws_holds(program, query: ConjunctiveQuery,
                           max_depth: Optional[int] = None,
                           engine: Optional[str] = None) -> bool:
    """Convenience wrapper for boolean conjunctive queries."""
    solver = DeterministicWSQAns(program, max_depth=max_depth, engine=engine)
    return solver.holds(query)
