"""Substitutions, unification and homomorphisms (the naive reference).

Substitutions map variables to terms.  The chase needs *homomorphisms* from
rule bodies to instances (variables map to values, constants map to
themselves); resolution-based query answering (``DeterministicWSQAns``)
needs *unification* between query atoms and rule heads, where variables may
map to variables.

The ``match_atom``/``find_homomorphisms`` implementations here scan
relations row by row and join body atoms in the order given.  They are the
**reference oracle**: the production evaluators go through the indexed
matching engine of :mod:`repro.engine.matching`, which is differentially
tested against this module (see ``docs/ARCHITECTURE.md``).  Select the
naive path engine-wide with ``repro.engine.set_default_engine("naive")`` or
per call with ``engine="naive"``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

from ..relational.instance import DatabaseInstance
from .atoms import Atom, Comparison
from .terms import Null, Term, Variable, term_value, to_term

Substitution = Dict[Variable, Term]


def apply_to_term(substitution: Substitution, term: Term) -> Term:
    """Apply ``substitution`` to a single term (with path compression)."""
    while isinstance(term, Variable) and term in substitution:
        term = substitution[term]
    return term


def apply_to_atom(substitution: Substitution, atom: Atom) -> Atom:
    """Apply ``substitution`` to every term of ``atom``."""
    return Atom(
        atom.predicate,
        [apply_to_term(substitution, term) for term in atom.terms],
        negated=atom.negated,
    )


def apply_to_atoms(substitution: Substitution, atoms: Iterable[Atom]) -> List[Atom]:
    """Apply ``substitution`` to a sequence of atoms."""
    return [apply_to_atom(substitution, atom) for atom in atoms]


def compose(outer: Substitution, inner: Substitution) -> Substitution:
    """Compose two substitutions: first ``inner``, then ``outer``."""
    result: Substitution = {
        variable: apply_to_term(outer, term) for variable, term in inner.items()
    }
    for variable, term in outer.items():
        result.setdefault(variable, term)
    return result


def unify_terms(left: Term, right: Term,
                substitution: Optional[Substitution] = None) -> Optional[Substitution]:
    """Unify two terms under an existing substitution.

    Returns the extended substitution, or ``None`` if unification fails.
    Constants and nulls unify only with themselves.
    """
    substitution = dict(substitution or {})
    left = apply_to_term(substitution, left)
    right = apply_to_term(substitution, right)
    if left == right:
        return substitution
    if isinstance(left, Variable):
        substitution[left] = right
        return substitution
    if isinstance(right, Variable):
        substitution[right] = left
        return substitution
    return None


def unify_atoms(left: Atom, right: Atom,
                substitution: Optional[Substitution] = None) -> Optional[Substitution]:
    """Unify two atoms (same predicate and arity) term by term."""
    if left.predicate != right.predicate or left.arity != right.arity:
        return None
    current = dict(substitution or {})
    for lt, rt in zip(left.terms, right.terms):
        unified = unify_terms(lt, rt, current)
        if unified is None:
            return None
        current = unified
    return current


def match_atom_against_row(atom: Atom, row: Sequence[Any],
                           substitution: Optional[Substitution] = None
                           ) -> Optional[Substitution]:
    """Match ``atom`` against a stored fact row (one-way matching).

    Variables of the atom bind to row values; constants must equal the row
    value; labeled nulls in the atom must equal the row value.  Returns the
    extended substitution or ``None``.
    """
    if len(row) != atom.arity:
        return None
    current = dict(substitution or {})
    for term, value in zip(atom.terms, row):
        term = apply_to_term(current, term)
        if isinstance(term, Variable):
            current[term] = to_term(value)
        else:
            if term_value(term) != value:
                return None
    return current


def match_atom(atom: Atom, instance: DatabaseInstance,
               substitution: Optional[Substitution] = None) -> Iterator[Substitution]:
    """Yield every extension of ``substitution`` matching ``atom`` in ``instance``.

    Atoms over predicates that have no relation in ``instance`` simply have
    no matches.
    """
    if not instance.has_relation(atom.predicate):
        return
    relation = instance.relation(atom.predicate)
    for row in relation:
        matched = match_atom_against_row(atom, row, substitution)
        if matched is not None:
            yield matched


def evaluate_comparisons(comparisons: Sequence[Comparison],
                         substitution: Substitution) -> bool:
    """Evaluate ground comparisons under ``substitution``.

    A comparison whose sides are not both ground is treated as failed — by
    the time filters are applied all query variables should be bound.
    """
    for comparison in comparisons:
        left = apply_to_term(substitution, comparison.left)
        right = apply_to_term(substitution, comparison.right)
        if isinstance(left, Variable) or isinstance(right, Variable):
            return False
        if not comparison.evaluate(term_value(left), term_value(right)):
            return False
    return True


def comparison_bindings(comparisons: Sequence[Comparison],
                        substitution: Optional[Substitution] = None
                        ) -> Substitution:
    """Bindings implied by equality comparisons against a ground term.

    A comparison ``X = 'c'`` (or ``'c' = X``) forces every satisfying
    homomorphism to bind ``X`` to ``'c'``; seeding the substitution with
    that binding lets the matchers treat the position as ground — the
    indexed engine probes instead of scanning — while the final
    :func:`evaluate_comparisons` filter keeps the semantics unchanged
    (already-bound variables are left alone and checked there).
    """
    bound: Substitution = dict(substitution or {})
    for comparison in comparisons:
        if comparison.op not in ("=", "=="):
            continue
        left = apply_to_term(bound, comparison.left)
        right = apply_to_term(bound, comparison.right)
        if isinstance(left, Variable) and not isinstance(right, Variable):
            bound[left] = right
        elif isinstance(right, Variable) and not isinstance(left, Variable):
            bound[right] = left
    return bound


def find_homomorphisms(atoms: Sequence[Atom], instance: DatabaseInstance,
                       substitution: Optional[Substitution] = None,
                       comparisons: Sequence[Comparison] = (),
                       match=None) -> Iterator[Substitution]:
    """Yield every homomorphism from ``atoms`` into ``instance``.

    Positive atoms are matched left to right with backtracking via recursion;
    negated atoms are checked *after* all positive atoms are matched (safe
    negation: their variables must be bound by then).  Comparisons are
    applied last — but equality comparisons against a ground term seed the
    initial substitution (:func:`comparison_bindings`), so matchers see
    those positions as bound from the start.

    ``match`` optionally substitutes the per-atom matcher (same signature as
    :func:`match_atom`); the engine's :class:`~repro.engine.matching.NaiveMatcher`
    passes its counting wrapper here so the negation/comparison semantics
    live only in this module.
    """
    positive = [atom for atom in atoms if not atom.negated]
    negative = [atom for atom in atoms if atom.negated]
    match = match if match is not None else match_atom
    if comparisons:
        substitution = comparison_bindings(comparisons, substitution)

    def extend(index: int, current: Substitution) -> Iterator[Substitution]:
        if index == len(positive):
            for negated in negative:
                grounded = apply_to_atom(current, negated.positive())
                if not grounded.is_ground():
                    # Unsafe negation: unbound variable under negation never
                    # blocks — treat as satisfied only if no fact matches any
                    # grounding, which we approximate by requiring groundness.
                    return
                if any(isinstance(term, Null) for term in grounded.terms):
                    # Cautious negation over labeled nulls: a null stands for
                    # some unknown value, so ¬P(…null…) is not *certainly*
                    # true and the (certain) match is rejected.  This keeps
                    # referential constraints of form (1) from firing on
                    # members invented by form-(10) downward navigation.
                    return
                if instance.has_relation(grounded.predicate) and \
                        grounded.to_fact_row() in instance.relation(grounded.predicate):
                    return
            if evaluate_comparisons(comparisons, current):
                yield current
            return
        for extended in match(positive[index], instance, current):
            yield from extend(index + 1, extended)

    yield from extend(0, dict(substitution or {}))


def has_homomorphism(atoms: Sequence[Atom], instance: DatabaseInstance,
                     substitution: Optional[Substitution] = None) -> bool:
    """``True`` iff at least one homomorphism exists."""
    for _ in find_homomorphisms(atoms, instance, substitution):
        return True
    return False


def freeze_atom(atom: Atom, substitution: Substitution) -> Atom:
    """Apply a substitution and fail loudly if the atom stays non-ground."""
    grounded = apply_to_atom(substitution, atom)
    if not grounded.is_ground():
        missing = [t for t in grounded.terms if isinstance(t, Variable)]
        raise ValueError(f"atom {atom} not grounded; unbound variables: {missing}")
    return grounded
