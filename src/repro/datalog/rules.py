"""Dependencies (rules) and queries of the Datalog± language.

The paper's ontologies use four kinds of statements (Section III):

* **TGDs** (tuple-generating dependencies) — rules of the form
  ``∃z̄ H(x̄, z̄) ← B1(x̄), ..., Bn(x̄)``; existential variables are simply the
  head variables that do not occur in the body.  Dimensional rules of forms
  (4) and (10) are TGDs.
* **EGDs** (equality-generating dependencies) — ``x = x' ← body``;
  dimensional constraints of form (2).
* **Negative constraints** — ``⊥ ← body``; referential constraints of form
  (1) (which may contain one negated category atom) and dimensional
  constraints of form (3).
* **Conjunctive queries**, possibly with built-in comparisons, for the
  query-answering algorithms of Section IV.
"""

from __future__ import annotations

import itertools
from typing import List, Sequence, Set, Tuple

from ..errors import DatalogError, UnsafeRuleError
from .atoms import Atom, Comparison, atoms_variables
from .terms import Constant, Term, Variable


def _check_positive(atoms: Sequence[Atom], where: str) -> None:
    for atom in atoms:
        if atom.negated:
            raise DatalogError(f"negated atom {atom} is not allowed in {where}")


class TGD:
    """A tuple-generating dependency ``head₁,...,headₖ ← body₁,...,bodyₙ``.

    Head variables that do not occur in the body are existentially
    quantified.  A TGD with no existential variables and a single head atom
    is a plain Datalog rule.
    """

    def __init__(self, head: Sequence[Atom], body: Sequence[Atom], label: str = ""):
        head = tuple(head)
        body = tuple(body)
        if not head:
            raise DatalogError("a TGD must have at least one head atom")
        if not body:
            raise DatalogError("a TGD must have at least one body atom")
        _check_positive(head, "a TGD head")
        _check_positive(body, "a TGD body")
        self.head: Tuple[Atom, ...] = head
        self.body: Tuple[Atom, ...] = body
        self.label = label
        for term in itertools.chain.from_iterable(atom.terms for atom in head):
            # Constants in heads are fine; what must not happen is a head
            # term that is neither a variable nor a constant.
            if not isinstance(term, (Variable, Constant)) and term is not None:
                # Labeled nulls in rule heads would make the rule non-generic.
                raise UnsafeRuleError(f"illegal head term {term!r} in TGD {self}")

    # -- variable classification --------------------------------------------

    def body_variables(self) -> List[Variable]:
        """Variables occurring in the body (the universal variables)."""
        return atoms_variables(self.body)

    def head_variables(self) -> List[Variable]:
        """Variables occurring in the head."""
        return atoms_variables(self.head)

    def frontier_variables(self) -> List[Variable]:
        """Variables shared between body and head."""
        body_vars = set(self.body_variables())
        return [v for v in self.head_variables() if v in body_vars]

    def existential_variables(self) -> List[Variable]:
        """Head variables that do not occur in the body."""
        body_vars = set(self.body_variables())
        return [v for v in self.head_variables() if v not in body_vars]

    def is_existential(self) -> bool:
        """``True`` if the rule has at least one existential variable."""
        return bool(self.existential_variables())

    def is_plain_datalog(self) -> bool:
        """``True`` if the rule has no existential variables."""
        return not self.is_existential()

    def is_linear(self) -> bool:
        """``True`` if the body consists of a single atom."""
        return len(self.body) == 1

    def join_variables(self) -> List[Variable]:
        """Variables occurring more than once in the body.

        A variable is a join variable if it occurs in two different body
        atoms or twice within the same body atom.
        """
        result = []
        for variable in self.body_variables():
            occurrences = sum(
                sum(1 for term in atom.terms if term == variable)
                for atom in self.body
            )
            if occurrences > 1:
                result.append(variable)
        return result

    # -- predicates ----------------------------------------------------------

    def head_predicates(self) -> Set[str]:
        """Predicate names of the head atoms."""
        return {atom.predicate for atom in self.head}

    def body_predicates(self) -> Set[str]:
        """Predicate names of the body atoms."""
        return {atom.predicate for atom in self.body}

    def __str__(self) -> str:
        existentials = self.existential_variables()
        prefix = f"exists {', '.join(map(str, existentials))} " if existentials else ""
        head = ", ".join(str(atom) for atom in self.head)
        body = ", ".join(str(atom) for atom in self.body)
        return f"{prefix}{head} :- {body}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TGD({self})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TGD):
            return NotImplemented
        return self.head == other.head and self.body == other.body

    def __hash__(self) -> int:
        return hash((self.head, self.body))


class EGD:
    """An equality-generating dependency ``x = y ← body``.

    Both sides of the head equality must occur in the body (safety).
    """

    def __init__(self, left: Term, right: Term, body: Sequence[Atom], label: str = ""):
        body = tuple(body)
        if not body:
            raise DatalogError("an EGD must have at least one body atom")
        _check_positive(body, "an EGD body")
        self.left = left
        self.right = right
        self.body: Tuple[Atom, ...] = body
        self.label = label
        body_vars = set(atoms_variables(body))
        for term in (left, right):
            if isinstance(term, Variable) and term not in body_vars:
                raise UnsafeRuleError(
                    f"EGD head variable {term} does not occur in the body: {self}"
                )

    def body_variables(self) -> List[Variable]:
        """Variables occurring in the body."""
        return atoms_variables(self.body)

    def head_variables(self) -> List[Variable]:
        """Variables of the head equality."""
        return [t for t in (self.left, self.right) if isinstance(t, Variable)]

    def body_predicates(self) -> Set[str]:
        """Predicate names of the body atoms."""
        return {atom.predicate for atom in self.body}

    def head_positions(self) -> Set[Tuple[str, int]]:
        """Body positions at which the equated variables occur."""
        positions: Set[Tuple[str, int]] = set()
        for variable in self.head_variables():
            for atom in self.body:
                positions.update(atom.positions_of(variable))
        return positions

    def __str__(self) -> str:
        body = ", ".join(str(atom) for atom in self.body)
        return f"{self.left} = {self.right} :- {body}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EGD({self})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EGD):
            return NotImplemented
        return (self.left, self.right, self.body) == (other.left, other.right, other.body)

    def __hash__(self) -> int:
        return hash((self.left, self.right, self.body))


class NegativeConstraint:
    """A negative constraint (denial) ``⊥ ← body``.

    The body may contain negated atoms (used by the paper's referential
    constraints of form (1), e.g. ``⊥ ← PatientUnit(u,d;p), ¬Unit(u)``) and
    built-in comparisons.  A constraint is violated when its body has a
    match in the instance.
    """

    def __init__(self, body: Sequence[Atom], comparisons: Sequence[Comparison] = (),
                 label: str = ""):
        body = tuple(body)
        if not body:
            raise DatalogError("a negative constraint must have at least one body atom")
        if all(atom.negated for atom in body):
            raise DatalogError(
                "a negative constraint needs at least one positive body atom"
            )
        self.body: Tuple[Atom, ...] = body
        self.comparisons: Tuple[Comparison, ...] = tuple(comparisons)
        self.label = label

    def positive_atoms(self) -> List[Atom]:
        """The positive literals of the body."""
        return [atom for atom in self.body if not atom.negated]

    def negative_atoms(self) -> List[Atom]:
        """The negated literals of the body."""
        return [atom for atom in self.body if atom.negated]

    def body_variables(self) -> List[Variable]:
        """Variables occurring in the body."""
        return atoms_variables(self.body)

    def body_predicates(self) -> Set[str]:
        """Predicate names of the body atoms (positive and negative)."""
        return {atom.predicate for atom in self.body}

    def __str__(self) -> str:
        parts = [str(atom) for atom in self.body] + [str(c) for c in self.comparisons]
        return f"false :- {', '.join(parts)}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NegativeConstraint({self})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NegativeConstraint):
            return NotImplemented
        return self.body == other.body and self.comparisons == other.comparisons

    def __hash__(self) -> int:
        return hash((self.body, self.comparisons))


class ConjunctiveQuery:
    """A conjunctive query, possibly with built-in comparison atoms.

    ``answer_variables`` empty means a *boolean* conjunctive query (BCQ).
    Comparisons act as filters over candidate substitutions.
    """

    def __init__(self, answer_variables: Sequence[Variable], body: Sequence[Atom],
                 comparisons: Sequence[Comparison] = (), name: str = "Q"):
        body = tuple(body)
        if not body:
            raise DatalogError("a conjunctive query must have at least one body atom")
        _check_positive(body, "a conjunctive query body")
        self.answer_variables: Tuple[Variable, ...] = tuple(answer_variables)
        self.body: Tuple[Atom, ...] = body
        self.comparisons: Tuple[Comparison, ...] = tuple(comparisons)
        self.name = name
        body_vars = set(atoms_variables(body))
        for variable in self.answer_variables:
            if variable not in body_vars:
                raise UnsafeRuleError(
                    f"answer variable {variable} does not occur in the query body"
                )

    def is_boolean(self) -> bool:
        """``True`` if the query has no answer variables."""
        return not self.answer_variables

    def body_variables(self) -> List[Variable]:
        """Variables occurring in the body."""
        return atoms_variables(self.body)

    def body_predicates(self) -> Set[str]:
        """Predicate names of the body atoms."""
        return {atom.predicate for atom in self.body}

    def to_boolean(self) -> "ConjunctiveQuery":
        """Return the boolean version of this query (drop answer variables)."""
        return ConjunctiveQuery((), self.body, self.comparisons, name=self.name)

    def __str__(self) -> str:
        head = f"{self.name}({', '.join(map(str, self.answer_variables))})"
        parts = [str(atom) for atom in self.body] + [str(c) for c in self.comparisons]
        return f"{head} :- {', '.join(parts)}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ConjunctiveQuery({self})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return (self.answer_variables, self.body, self.comparisons) == (
            other.answer_variables, other.body, other.comparisons)

    def __hash__(self) -> int:
        return hash((self.answer_variables, self.body, self.comparisons))


def plain_rule(head: Atom, body: Sequence[Atom], label: str = "") -> TGD:
    """Convenience constructor for a plain (existential-free) Datalog rule.

    Raises :class:`UnsafeRuleError` if the head introduces variables not
    bound in the body — callers that *want* existentials should build the
    :class:`TGD` directly.
    """
    rule = TGD([head], body, label=label)
    if rule.is_existential():
        raise UnsafeRuleError(
            f"plain rule has unbound head variables {rule.existential_variables()}: {rule}"
        )
    return rule
