"""Datalog± programs: a set of dependencies plus an extensional database.

A :class:`DatalogProgram` bundles the TGDs, EGDs and negative constraints of
an ontology with the extensional database instance they are evaluated over.
It also offers predicate bookkeeping (arities, extensional vs intensional
predicates) that the chase, the class analyzer and the query-answering
algorithms all rely on.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import DatalogError
from ..relational.instance import DatabaseInstance
from .atoms import Atom
from .rules import EGD, NegativeConstraint, TGD


class DatalogProgram:
    """A Datalog± program: TGDs + EGDs + negative constraints + data."""

    def __init__(self,
                 tgds: Iterable[TGD] = (),
                 egds: Iterable[EGD] = (),
                 constraints: Iterable[NegativeConstraint] = (),
                 database: Optional[DatabaseInstance] = None):
        self.tgds: List[TGD] = list(tgds)
        self.egds: List[EGD] = list(egds)
        self.constraints: List[NegativeConstraint] = list(constraints)
        self.database: DatabaseInstance = database if database is not None else DatabaseInstance()

    # -- construction ---------------------------------------------------------

    def add_tgd(self, tgd: TGD) -> TGD:
        """Add a TGD to the program."""
        self.tgds.append(tgd)
        return tgd

    def add_egd(self, egd: EGD) -> EGD:
        """Add an EGD to the program."""
        self.egds.append(egd)
        return egd

    def add_constraint(self, constraint: NegativeConstraint) -> NegativeConstraint:
        """Add a negative constraint to the program."""
        self.constraints.append(constraint)
        return constraint

    def add_rules(self, rules: Iterable[object]) -> None:
        """Add a heterogeneous collection of dependencies."""
        for rule in rules:
            if isinstance(rule, TGD):
                self.add_tgd(rule)
            elif isinstance(rule, EGD):
                self.add_egd(rule)
            elif isinstance(rule, NegativeConstraint):
                self.add_constraint(rule)
            else:
                raise DatalogError(f"cannot add object of type {type(rule).__name__} to a program")

    def add_fact(self, predicate: str, row: Sequence) -> bool:
        """Insert a fact, declaring the relation on first use.

        Attribute names are synthesized (``a0``, ``a1``, ...) when the
        relation is not yet declared; callers that care about attribute
        names should declare relations on the database instance first.
        """
        if not self.database.has_relation(predicate):
            self.database.declare(predicate, [f"a{i}" for i in range(len(row))])
        return self.database.add(predicate, row)

    def add_atom_fact(self, atom: Atom) -> bool:
        """Insert a ground atom as a fact."""
        return self.add_fact(atom.predicate, atom.to_fact_row())

    # -- predicate bookkeeping -------------------------------------------------

    def dependencies(self) -> List[object]:
        """All dependencies (TGDs, EGDs, negative constraints)."""
        return [*self.tgds, *self.egds, *self.constraints]

    def predicate_arities(self) -> Dict[str, int]:
        """Predicate name → arity, collected from rules and data.

        Raises :class:`DatalogError` on inconsistent arities.
        """
        arities: Dict[str, int] = {}

        def record(predicate: str, arity: int, where: str) -> None:
            known = arities.get(predicate)
            if known is None:
                arities[predicate] = arity
            elif known != arity:
                raise DatalogError(
                    f"predicate {predicate!r} used with arity {arity} in {where} "
                    f"but previously with arity {known}"
                )

        for relation in self.database:
            record(relation.schema.name, relation.schema.arity, "the database")
        for tgd in self.tgds:
            for atom in (*tgd.body, *tgd.head):
                record(atom.predicate, atom.arity, f"TGD {tgd}")
        for egd in self.egds:
            for atom in egd.body:
                record(atom.predicate, atom.arity, f"EGD {egd}")
        for constraint in self.constraints:
            for atom in constraint.body:
                record(atom.predicate, atom.arity, f"constraint {constraint}")
        return arities

    def predicates(self) -> Set[str]:
        """All predicate names mentioned anywhere in the program."""
        return set(self.predicate_arities())

    def intensional_predicates(self) -> Set[str]:
        """Predicates defined by some TGD head."""
        return {atom.predicate for tgd in self.tgds for atom in tgd.head}

    def extensional_predicates(self) -> Set[str]:
        """Predicates that are never defined by a TGD head."""
        return self.predicates() - self.intensional_predicates()

    def positions(self) -> Set[Tuple[str, int]]:
        """All positions ``(predicate, index)`` of the program's predicates."""
        return {
            (predicate, index)
            for predicate, arity in self.predicate_arities().items()
            for index in range(arity)
        }

    # -- data handling ----------------------------------------------------------

    def ensure_relations(self) -> None:
        """Declare a relation for every predicate used by the rules.

        The chase writes generated facts into the same database instance it
        reads from, so every intensional predicate needs a relation even when
        the input data has none.
        """
        for predicate, arity in self.predicate_arities().items():
            if not self.database.has_relation(predicate):
                self.database.declare(predicate, [f"a{i}" for i in range(arity)])

    def copy(self, database: Optional[DatabaseInstance] = None) -> "DatalogProgram":
        """Copy the program; optionally substitute a different database."""
        return DatalogProgram(
            tgds=list(self.tgds),
            egds=list(self.egds),
            constraints=list(self.constraints),
            database=database.copy() if database is not None else self.database.copy(),
        )

    def without_constraints(self) -> "DatalogProgram":
        """Copy of the program with EGDs and negative constraints removed.

        Used by the separability analysis: for separable programs, certain
        answers over the TGD-only program coincide with certain answers over
        the full program (provided the latter is consistent).
        """
        return DatalogProgram(tgds=list(self.tgds), database=self.database.copy())

    def __str__(self) -> str:
        lines = [str(rule) for rule in self.dependencies()]
        lines.append(f"-- {self.database.total_tuples()} extensional facts")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DatalogProgram({len(self.tgds)} TGDs, {len(self.egds)} EGDs, "
                f"{len(self.constraints)} constraints, "
                f"{self.database.total_tuples()} facts)")
