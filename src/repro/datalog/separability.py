"""Separability of EGDs from TGDs.

An EGD set Σ_E is *separable* from a TGD set Σ_T (Calì–Gottlob–Pieris) when,
for every database D that is consistent with Σ_E ∪ Σ_T, the certain answers
to any conjunctive query over Σ_T ∪ Σ_E coincide with the certain answers
over Σ_T alone.  In that case EGDs can be treated purely as integrity
constraints — checked once and then ignored during query answering — which
is exactly how the paper uses the dimensional constraints of form (2).

The paper's observation (Section III) is that separability holds whenever
the dimensional EGDs equate **only categorical variables**, i.e. variables
occurring at positions where the chase never invents labeled nulls.  This
module provides:

* :func:`egd_separability_report` — a syntactic *sufficient* condition based
  on finite-rank / null-free positions: an EGD is certified separable when
  the positions of its equated variables can never carry an invented null,
  so applying it during the chase can never merge a null into a constant or
  trigger new TGD applications;
* :func:`check_separability_empirically` — a dynamic cross-check used by the
  test-suite: it runs the chase with and without the EGDs and compares the
  answers to a workload of conjunctive queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set

from ..errors import InconsistencyError
from .answering import certain_answers
from .chase import chase
from .graphs import Position, build_position_graph
from .program import DatalogProgram
from .rules import EGD, ConjunctiveQuery, TGD


def null_prone_positions(tgds: Sequence[TGD]) -> Set[Position]:
    """Positions where the chase may place an invented (existential) null.

    These are the positions of existential variables in TGD heads, closed
    under propagation along the position graph's ordinary edges (a null
    placed at a head position can later be copied to any position reachable
    from it through frontier variables).
    """
    graph = build_position_graph(tgds)
    seeds: Set[Position] = set()
    for tgd in tgds:
        existentials = set(tgd.existential_variables())
        for atom in tgd.head:
            for index, term in enumerate(atom.terms):
                if term in existentials:
                    seeds.add((atom.predicate, index))
    return graph.reachable_from(seeds)


@dataclass
class SeparabilityReport:
    """Outcome of the syntactic separability analysis."""

    separable: bool
    certified_egds: List[EGD] = field(default_factory=list)
    uncertified_egds: List[EGD] = field(default_factory=list)
    reasons: Dict[int, str] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.separable


def egd_separability_report(tgds: Sequence[TGD], egds: Sequence[EGD]) -> SeparabilityReport:
    """Certify EGDs as separable when their equated variables avoid null-prone positions.

    This is a *sufficient* condition: an ``uncertified`` EGD is not
    necessarily non-separable (the paper notes that with rules of form (10)
    the check becomes application dependent); it just cannot be certified
    syntactically.
    """
    prone = null_prone_positions(tgds)
    certified: List[EGD] = []
    uncertified: List[EGD] = []
    reasons: Dict[int, str] = {}
    for index, egd in enumerate(egds):
        positions = egd.head_positions()
        offending = positions & prone
        if offending:
            uncertified.append(egd)
            reasons[index] = (
                f"equated variables occur at null-prone positions {sorted(offending)}"
            )
        else:
            certified.append(egd)
    return SeparabilityReport(
        separable=not uncertified,
        certified_egds=certified,
        uncertified_egds=uncertified,
        reasons=reasons,
    )


def check_separability_empirically(program: DatalogProgram,
                                   queries: Sequence[ConjunctiveQuery],
                                   max_steps: int = 100_000) -> bool:
    """Dynamic separability check on a concrete database and query workload.

    Returns ``True`` when (a) the full program is consistent (no EGD
    conflict, no constraint violation) and (b) every query in ``queries``
    has the same certain answers with and without the EGDs.  This is the
    empirical counterpart of the syntactic certificate and is used by the
    test-suite to validate it.
    """
    try:
        full_result = chase(program, max_steps=max_steps)
    except InconsistencyError:
        return False
    if not full_result.is_consistent:
        return False
    tgd_only = program.without_constraints()
    for query in queries:
        with_egds = certain_answers(program, query, max_steps=max_steps)
        without_egds = certain_answers(tgd_only, query, max_steps=max_steps)
        if set(with_egds) != set(without_egds):
            return False
    return True
