"""Dependency graphs used by the syntactic analysis of Datalog± programs.

Two graphs matter for the classes the paper relies on:

* the **predicate dependency graph** (edges from body predicates to head
  predicates of TGDs) — used to detect recursion and to order non-recursive
  rewritings;
* the **position dependency graph** of weak acyclicity (Fagin et al.):
  nodes are positions ``(predicate, index)``; a TGD with a frontier variable
  at body position *p* and head position *q* contributes an ordinary edge
  ``p → q``; if the same rule has an existential variable at head position
  *r*, it also contributes a *special* edge ``p ⇒ r``.  Positions from which
  no cycle through a special edge is reachable have **finite rank**: only
  finitely many distinct values can ever appear there during the chase.
  Finite-rank positions are the ingredient that turns *sticky* into
  *weakly sticky* (Calì, Gottlob & Pieris, AIJ 2012), which is the class the
  paper's MD ontologies belong to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from .rules import TGD

Position = Tuple[str, int]


@dataclass
class PositionGraph:
    """The weak-acyclicity position graph of a set of TGDs."""

    positions: Set[Position] = field(default_factory=set)
    ordinary_edges: Set[Tuple[Position, Position]] = field(default_factory=set)
    special_edges: Set[Tuple[Position, Position]] = field(default_factory=set)

    def all_edges(self) -> Set[Tuple[Position, Position]]:
        """Ordinary and special edges together."""
        return self.ordinary_edges | self.special_edges

    def successors(self, position: Position) -> Set[Position]:
        """Positions reachable in one step from ``position``."""
        return {target for source, target in self.all_edges() if source == position}

    # -- analyses -------------------------------------------------------------

    def reachable_from(self, sources: Iterable[Position]) -> Set[Position]:
        """Positions reachable (in ≥ 0 steps) from any of ``sources``."""
        adjacency: Dict[Position, Set[Position]] = {}
        for source, target in self.all_edges():
            adjacency.setdefault(source, set()).add(target)
        seen: Set[Position] = set()
        frontier = [p for p in sources]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(adjacency.get(current, ()))
        return seen

    def positions_on_special_cycles(self) -> Set[Position]:
        """Positions lying on a cycle that contains at least one special edge.

        Computed per strongly connected component: a position is on such a
        cycle iff its SCC has more than one node — or a self-loop — and the
        SCC contains a special edge between two of its members.
        """
        sccs = self._strongly_connected_components()
        result: Set[Position] = set()
        for component in sccs:
            members = set(component)
            internal_special = any(
                source in members and target in members
                for source, target in self.special_edges
            )
            internal_any = any(
                source in members and target in members
                for source, target in self.all_edges()
            )
            if internal_special and (len(members) > 1 or internal_any):
                result |= members
        return result

    def infinite_rank_positions(self) -> Set[Position]:
        """Positions where unboundedly many nulls may appear during the chase.

        These are the positions reachable from a cycle through a special
        edge.  Their complement is the set of *finite-rank* positions.
        """
        on_cycles = self.positions_on_special_cycles()
        return self.reachable_from(on_cycles)

    def finite_rank_positions(self) -> Set[Position]:
        """Positions at which only finitely many values can appear."""
        return self.positions - self.infinite_rank_positions()

    def is_weakly_acyclic(self) -> bool:
        """``True`` iff no cycle goes through a special edge."""
        return not self.positions_on_special_cycles()

    # -- internals -------------------------------------------------------------

    def _strongly_connected_components(self) -> List[List[Position]]:
        """Tarjan's algorithm (iterative) over the full edge set."""
        adjacency: Dict[Position, List[Position]] = {p: [] for p in self.positions}
        for source, target in self.all_edges():
            adjacency.setdefault(source, []).append(target)
            adjacency.setdefault(target, [])

        index_counter = [0]
        indices: Dict[Position, int] = {}
        lowlinks: Dict[Position, int] = {}
        on_stack: Set[Position] = set()
        stack: List[Position] = []
        components: List[List[Position]] = []

        def strongconnect(root: Position) -> None:
            work = [(root, iter(adjacency[root]))]
            indices[root] = lowlinks[root] = index_counter[0]
            index_counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for successor in successors:
                    if successor not in indices:
                        indices[successor] = lowlinks[successor] = index_counter[0]
                        index_counter[0] += 1
                        stack.append(successor)
                        on_stack.add(successor)
                        work.append((successor, iter(adjacency[successor])))
                        advanced = True
                        break
                    if successor in on_stack:
                        lowlinks[node] = min(lowlinks[node], indices[successor])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
                if lowlinks[node] == indices[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)

        for position in adjacency:
            if position not in indices:
                strongconnect(position)
        return components


def build_position_graph(tgds: Sequence[TGD],
                         extra_positions: Iterable[Position] = ()) -> PositionGraph:
    """Build the weak-acyclicity position graph of ``tgds``."""
    graph = PositionGraph()
    graph.positions.update(extra_positions)
    for tgd in tgds:
        for atom in (*tgd.body, *tgd.head):
            graph.positions.update(atom.positions())
    for tgd in tgds:
        existentials = set(tgd.existential_variables())
        body_vars = set(tgd.body_variables())
        for variable in tgd.frontier_variables():
            body_positions = [pos for atom in tgd.body for pos in atom.positions_of(variable)]
            head_positions = [pos for atom in tgd.head for pos in atom.positions_of(variable)]
            for source in body_positions:
                for target in head_positions:
                    graph.ordinary_edges.add((source, target))
                for atom in tgd.head:
                    for existential in existentials:
                        for target in atom.positions_of(existential):
                            graph.special_edges.add((source, target))
        # Rules whose body shares no variable with the head still contribute
        # their positions (already collected above), but no edges.
        _ = body_vars
    return graph


@dataclass
class PredicateGraph:
    """The predicate dependency graph of a set of TGDs."""

    nodes: Set[str] = field(default_factory=set)
    edges: Set[Tuple[str, str]] = field(default_factory=set)

    def successors(self, node: str) -> Set[str]:
        """Predicates directly derivable from ``node``."""
        return {target for source, target in self.edges if source == node}

    def is_recursive(self) -> bool:
        """``True`` iff the graph has a (possibly self-loop) cycle."""
        return bool(self.predicates_on_cycles())

    def predicates_on_cycles(self) -> Set[str]:
        """Predicates that participate in some cycle."""
        adjacency: Dict[str, Set[str]] = {node: set() for node in self.nodes}
        for source, target in self.edges:
            adjacency.setdefault(source, set()).add(target)
            adjacency.setdefault(target, set())
        result: Set[str] = set()
        for start in adjacency:
            # A node is on a cycle iff it can reach itself in >= 1 step.
            frontier = list(adjacency[start])
            seen: Set[str] = set()
            while frontier:
                node = frontier.pop()
                if node == start:
                    result.add(start)
                    break
                if node in seen:
                    continue
                seen.add(node)
                frontier.extend(adjacency.get(node, ()))
        return result

    def topological_order(self) -> List[str]:
        """A topological order of the predicates (raises on cycles)."""
        if self.is_recursive():
            raise ValueError("predicate graph is cyclic; no topological order exists")
        in_degree: Dict[str, int] = {node: 0 for node in self.nodes}
        for _source, target in self.edges:
            in_degree[target] = in_degree.get(target, 0) + 1
        order: List[str] = []
        frontier = sorted(node for node, degree in in_degree.items() if degree == 0)
        while frontier:
            node = frontier.pop(0)
            order.append(node)
            for target in sorted(self.successors(node)):
                in_degree[target] -= 1
                if in_degree[target] == 0:
                    frontier.append(target)
        return order


def build_predicate_graph(tgds: Sequence[TGD]) -> PredicateGraph:
    """Build the predicate dependency graph of ``tgds``."""
    graph = PredicateGraph()
    for tgd in tgds:
        graph.nodes |= tgd.body_predicates() | tgd.head_predicates()
        for source in tgd.body_predicates():
            for target in tgd.head_predicates():
                graph.edges.add((source, target))
    return graph
