"""The chase procedure for Datalog± programs.

The chase takes an extensional database and a set of dependencies and
repairs the database until every dependency is satisfied:

* an applicable **TGD** trigger adds the (ground) head atoms, inventing a
  fresh labeled null for each existential variable;
* an applicable **EGD** trigger equates two values — replacing a labeled
  null by the other value, or failing hard when two distinct constants
  would have to be equated;
* **negative constraints** are checked on the final result (or eagerly,
  when ``fail_fast`` is set) and produce :class:`InconsistencyError`.

Two flavours are provided (ablation experiment E10 in DESIGN.md):

* the **restricted** (standard) chase only fires a TGD trigger when the head
  is not already satisfied by some extension of the trigger homomorphism;
* the **oblivious** chase fires every trigger exactly once regardless.

For the paper's MD ontologies the restricted chase terminates: dimensional
rules of forms (1)–(4) invent nulls only at non-categorical positions and
form (10) only finitely many member nulls (Section III).  Arbitrary user
programs may not terminate, so the engine enforces a step budget and raises
:class:`ChaseNonTerminationError` when it is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import ChaseNonTerminationError, EGDConflictError, InconsistencyError
from ..relational.instance import DatabaseInstance
from ..relational.values import Null, NullFactory
from .atoms import Atom
from .program import DatalogProgram
from .rules import EGD, NegativeConstraint, TGD
from .terms import Constant, Variable, term_value
from .unify import (Substitution, apply_to_atom, apply_to_term, find_homomorphisms,
                    match_atom)

RESTRICTED = "restricted"
OBLIVIOUS = "oblivious"


@dataclass
class ConstraintViolation:
    """A witnessed violation of a negative constraint."""

    constraint: NegativeConstraint
    witness: Dict[str, object]

    def __str__(self) -> str:
        bindings = ", ".join(f"{var}={val}" for var, val in sorted(self.witness.items()))
        return f"violation of [{self.constraint}] with {bindings}"


@dataclass
class ChaseResult:
    """Outcome of a chase run."""

    instance: DatabaseInstance
    steps: int
    rounds: int
    terminated: bool
    mode: str
    egd_merges: int = 0
    violations: List[ConstraintViolation] = field(default_factory=list)

    @property
    def is_consistent(self) -> bool:
        """``True`` when no negative constraint was violated."""
        return not self.violations

    def generated_nulls(self) -> Set[Null]:
        """Labeled nulls present in the chased instance."""
        return self.instance.nulls()


class ChaseEngine:
    """Configurable chase runner.

    Parameters
    ----------
    mode:
        ``"restricted"`` (default) or ``"oblivious"``.
    max_steps:
        Budget on the number of applied TGD triggers; exceeding it raises
        :class:`ChaseNonTerminationError`.
    check_constraints:
        When ``True`` (default), negative constraints are evaluated on the
        chased instance and collected as violations.
    fail_fast:
        When ``True``, the first constraint violation or hard EGD conflict
        raises immediately instead of being collected.
    null_prefix:
        Prefix for the labels of invented nulls.
    """

    def __init__(self, mode: str = RESTRICTED, max_steps: int = 100_000,
                 check_constraints: bool = True, fail_fast: bool = False,
                 null_prefix: str = "n"):
        if mode not in (RESTRICTED, OBLIVIOUS):
            raise ValueError(f"unknown chase mode {mode!r}")
        self.mode = mode
        self.max_steps = max_steps
        self.check_constraints = check_constraints
        self.fail_fast = fail_fast
        self.null_prefix = null_prefix

    # -- public API ---------------------------------------------------------

    def run(self, program: DatalogProgram) -> ChaseResult:
        """Chase ``program``'s database; the input program is not mutated."""
        program = program.copy()
        program.ensure_relations()
        instance = program.database
        nulls = NullFactory(self.null_prefix)
        steps = 0
        rounds = 0
        egd_merges = 0
        applied_triggers: Set[Tuple[int, Tuple]] = set()

        changed = True
        while changed:
            rounds += 1
            changed = False

            # EGDs first: they may merge nulls and unblock/blot out TGD triggers.
            merges = self._apply_egds(program.egds, instance)
            if merges:
                egd_merges += merges
                changed = True

            for index, tgd in enumerate(program.tgds):
                triggers = list(find_homomorphisms(tgd.body, instance))
                for homomorphism in triggers:
                    trigger_key = self._trigger_key(index, tgd, homomorphism)
                    if self.mode == OBLIVIOUS and trigger_key in applied_triggers:
                        continue
                    if self.mode == RESTRICTED and self._head_satisfied(tgd, homomorphism, instance):
                        continue
                    self._apply_tgd(tgd, homomorphism, instance, nulls)
                    applied_triggers.add(trigger_key)
                    steps += 1
                    changed = True
                    if steps > self.max_steps:
                        raise ChaseNonTerminationError(
                            f"chase exceeded the budget of {self.max_steps} trigger applications; "
                            "the program may have a non-terminating chase")

        violations = self._check_constraints(program.constraints, instance) \
            if self.check_constraints else []
        return ChaseResult(
            instance=instance,
            steps=steps,
            rounds=rounds,
            terminated=True,
            mode=self.mode,
            egd_merges=egd_merges,
            violations=violations,
        )

    # -- TGDs ----------------------------------------------------------------

    @staticmethod
    def _trigger_key(index: int, tgd: TGD, homomorphism: Substitution) -> Tuple[int, Tuple]:
        relevant = tuple(
            (variable.name, term_value(apply_to_term(homomorphism, variable)))
            for variable in sorted(tgd.body_variables(), key=lambda v: v.name)
        )
        return (index, relevant)

    @staticmethod
    def _head_satisfied(tgd: TGD, homomorphism: Substitution,
                        instance: DatabaseInstance) -> bool:
        """Check if the head already holds under some extension of the trigger."""
        partial_head = [apply_to_atom(homomorphism, atom) for atom in tgd.head]
        for _ in find_homomorphisms(partial_head, instance):
            return True
        return False

    def _apply_tgd(self, tgd: TGD, homomorphism: Substitution,
                   instance: DatabaseInstance, nulls: NullFactory) -> None:
        extended: Substitution = dict(homomorphism)
        for variable in tgd.existential_variables():
            extended[variable] = nulls.fresh()
        for atom in tgd.head:
            grounded = apply_to_atom(extended, atom)
            instance.add(grounded.predicate, grounded.to_fact_row())

    # -- EGDs ----------------------------------------------------------------

    def _apply_egds(self, egds: Sequence[EGD], instance: DatabaseInstance) -> int:
        """Apply EGDs to a fixpoint; return the number of value merges."""
        merges = 0
        changed = True
        while changed:
            changed = False
            for egd in egds:
                for homomorphism in list(find_homomorphisms(egd.body, instance)):
                    left = term_value(apply_to_term(homomorphism, egd.left))
                    right = term_value(apply_to_term(homomorphism, egd.right))
                    if left == right:
                        continue
                    if not isinstance(left, Null) and not isinstance(right, Null):
                        raise EGDConflictError(
                            f"EGD [{egd}] requires equating distinct constants "
                            f"{left!r} and {right!r}",
                            constraint=egd,
                            witness={v.name: term_value(apply_to_term(homomorphism, v))
                                     for v in egd.body_variables()})
                    # Replace the null by the other value (prefer keeping constants).
                    if isinstance(left, Null) and not isinstance(right, Null):
                        self._replace_value(instance, left, right)
                    elif isinstance(right, Null) and not isinstance(left, Null):
                        self._replace_value(instance, right, left)
                    else:
                        # two nulls: keep the lexicographically smaller label
                        keep, drop = sorted((left, right), key=lambda n: n.label)
                        self._replace_value(instance, drop, keep)
                    merges += 1
                    changed = True
        return merges

    @staticmethod
    def _replace_value(instance: DatabaseInstance, old: object, new: object) -> None:
        for relation in instance:
            affected = [row for row in relation.rows() if old in row]
            for row in affected:
                relation.discard(row)
                relation.add(tuple(new if value == old else value for value in row))

    # -- negative constraints ------------------------------------------------

    def _check_constraints(self, constraints: Sequence[NegativeConstraint],
                           instance: DatabaseInstance) -> List[ConstraintViolation]:
        violations: List[ConstraintViolation] = []
        for constraint in constraints:
            for homomorphism in find_homomorphisms(
                    constraint.body, instance, comparisons=constraint.comparisons):
                witness = {
                    variable.name: term_value(apply_to_term(homomorphism, variable))
                    for variable in constraint.body_variables()
                }
                violation = ConstraintViolation(constraint, witness)
                if self.fail_fast:
                    raise InconsistencyError(
                        f"negative constraint violated: {violation}",
                        constraint=constraint, witness=witness)
                violations.append(violation)
                break  # one witness per constraint is enough for reporting
        return violations


def chase(program: DatalogProgram, mode: str = RESTRICTED,
          max_steps: int = 100_000, check_constraints: bool = True,
          fail_fast: bool = False) -> ChaseResult:
    """Convenience wrapper: run the chase with a one-off engine."""
    engine = ChaseEngine(mode=mode, max_steps=max_steps,
                         check_constraints=check_constraints, fail_fast=fail_fast)
    return engine.run(program)
