"""The chase procedure for Datalog± programs.

The chase takes an extensional database and a set of dependencies and
repairs the database until every dependency is satisfied:

* an applicable **TGD** trigger adds the (ground) head atoms, inventing a
  fresh labeled null for each existential variable;
* an applicable **EGD** trigger equates two values — replacing a labeled
  null by the other value, or failing hard when two distinct constants
  would have to be equated;
* **negative constraints** are checked on the final result (or eagerly,
  when ``fail_fast`` is set) and produce :class:`InconsistencyError`.

Two flavours are provided (ablation experiment E10 in the benchmark suite):

* the **restricted** (standard) chase only fires a TGD trigger when the head
  is not already satisfied by some extension of the trigger homomorphism;
* the **oblivious** chase fires every trigger exactly once regardless.

Independently of the flavour, two **engines** are available (see
``docs/ARCHITECTURE.md`` for the storage → matching → evaluator layering):

* ``engine="indexed"`` (the default) matches rule bodies through the hash
  indexes of :mod:`repro.engine.matching` and runs **delta-driven** rounds:
  after the first round, a rule is only re-evaluated when its body shares a
  predicate with the facts added (or rewritten by EGD merges) in the
  previous round, and its triggers are enumerated semi-naively — one body
  atom pinned to the delta, the rest joined against the full instance.
  EGD merges use the null-occurrence index so only affected rows are
  rewritten.
* ``engine="naive"`` recomputes every trigger from scratch each round with
  the row-scanning reference matcher — slow, but the oracle the indexed
  engine is differentially tested against.

An :class:`~repro.engine.stats.EngineStats` object describing the work done
(rows scanned, index probes, triggers fired, ...) is attached to the
returned :class:`ChaseResult`.

For the paper's MD ontologies the restricted chase terminates: dimensional
rules of forms (1)–(4) invent nulls only at non-categorical positions and
form (10) only finitely many member nulls (Section III).  Arbitrary user
programs may not terminate, so the engine enforces a step budget and raises
:class:`ChaseNonTerminationError` when it is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..engine.matching import (NAIVE, Matcher, iter_delta_joins, matcher_for,
                               resolve_engine)
from ..engine.stats import EngineStats
from ..errors import ChaseNonTerminationError, EGDConflictError, InconsistencyError
from ..relational.instance import DatabaseInstance
from ..relational.values import Null, NullFactory
from .atoms import Atom
from .program import DatalogProgram
from .rules import EGD, NegativeConstraint, TGD
from .terms import Variable, term_value
from .unify import (Substitution, apply_to_atom, apply_to_term,
                    match_atom_against_row)

RESTRICTED = "restricted"
OBLIVIOUS = "oblivious"

#: A stored fact, as ``(predicate, row)`` — the vocabulary of provenance
#: records and of the session layer's update APIs.
Fact = Tuple[str, Tuple[Any, ...]]

#: Provenance of derived facts: each fact the chase added maps to the
#: grounded body facts of the trigger that first derived it.  EGD merges
#: rewrite rows in place and make recorded provenance stale — the chase
#: reports merges so sessions can fall back to a full re-chase.
Provenance = Dict[Fact, Tuple[Fact, ...]]


@dataclass
class ConstraintViolation:
    """A witnessed violation of a negative constraint."""

    constraint: NegativeConstraint
    witness: Dict[str, object]

    def __str__(self) -> str:
        bindings = ", ".join(f"{var}={val}" for var, val in sorted(self.witness.items()))
        return f"violation of [{self.constraint}] with {bindings}"


@dataclass
class ChaseResult:
    """Outcome of a chase run."""

    instance: DatabaseInstance
    steps: int
    rounds: int
    terminated: bool
    mode: str
    egd_merges: int = 0
    violations: List[ConstraintViolation] = field(default_factory=list)
    engine: str = "indexed"
    stats: EngineStats = field(default_factory=EngineStats)
    #: derived-fact provenance, recorded when the caller asked for it
    #: (``record_provenance=True``); ``None`` otherwise
    provenance: Optional[Provenance] = None

    @property
    def is_consistent(self) -> bool:
        """``True`` when no negative constraint was violated."""
        return not self.violations

    def generated_nulls(self) -> Set[Null]:
        """Labeled nulls present in the chased instance."""
        return self.instance.nulls()


class ChaseEngine:
    """Configurable chase runner.

    Parameters
    ----------
    mode:
        ``"restricted"`` (default) or ``"oblivious"``.
    max_steps:
        Budget on the number of applied TGD triggers; exceeding it raises
        :class:`ChaseNonTerminationError`.
    check_constraints:
        When ``True`` (default), negative constraints are evaluated on the
        chased instance and collected as violations.
    fail_fast:
        When ``True``, the first constraint violation or hard EGD conflict
        raises immediately instead of being collected.
    null_prefix:
        Prefix for the labels of invented nulls.
    engine:
        ``"indexed"`` (delta-driven, index-probing; the default) or
        ``"naive"`` (full recomputation with the reference matcher).
        ``None`` uses the process-wide default of :mod:`repro.engine`.
    """

    def __init__(self, mode: str = RESTRICTED, max_steps: int = 100_000,
                 check_constraints: bool = True, fail_fast: bool = False,
                 null_prefix: str = "n", engine: Optional[str] = None):
        if mode not in (RESTRICTED, OBLIVIOUS):
            raise ValueError(f"unknown chase mode {mode!r}")
        self.mode = mode
        self.max_steps = max_steps
        self.check_constraints = check_constraints
        self.fail_fast = fail_fast
        self.null_prefix = null_prefix
        self.engine = resolve_engine(engine)

    # -- public API ---------------------------------------------------------

    def run(self, program: DatalogProgram, copy: bool = True,
            nulls: Optional[NullFactory] = None,
            record_provenance: bool = False,
            provenance: Optional[Provenance] = None) -> ChaseResult:
        """Chase ``program``'s database.

        With ``copy`` (the default) the input program is not mutated; a
        materialization session passes ``copy=False`` to chase its own
        program's database in place.  A shared ``nulls`` factory keeps null
        labels unique across resumed runs.  With ``record_provenance`` the
        result carries a :data:`Provenance` mapping each derived fact to the
        grounded body facts of the trigger that first derived it; callers
        that maintain indexes over the provenance may supply their own
        (possibly instrumented) ``provenance`` mapping instead.
        """
        if copy:
            program = program.copy()
        program.ensure_relations()
        instance = program.database
        nulls = nulls if nulls is not None else NullFactory(self.null_prefix)
        if provenance is None and record_provenance:
            provenance = {}
        stats = EngineStats(engine=self.engine)
        matcher = matcher_for(self.engine, stats)
        merge_counter = self._index_merge_counter(matcher)
        merge_base = merge_counter() if merge_counter else 0

        if self.engine == NAIVE:
            steps, rounds, egd_merges = self._run_naive(
                program, instance, nulls, matcher, provenance)
        else:
            steps, rounds, egd_merges = self._run_delta(
                program, instance, nulls, matcher, provenance)

        stats.triggers_fired = steps
        stats.rounds = rounds
        stats.egd_merges = egd_merges
        if merge_counter:
            stats.index_delta_merges = merge_counter() - merge_base

        violations = self._check_constraints(program.constraints, instance, matcher) \
            if self.check_constraints else []
        return ChaseResult(
            instance=instance,
            steps=steps,
            rounds=rounds,
            terminated=True,
            mode=self.mode,
            egd_merges=egd_merges,
            violations=violations,
            engine=self.engine,
            stats=stats,
            provenance=provenance,
        )

    def continue_chase(self, program: DatalogProgram, seed: Iterable[Fact],
                       nulls: NullFactory,
                       provenance: Optional[Provenance] = None) -> ChaseResult:
        """Re-enter the chase on an already-chased ``program.database``.

        ``seed`` names the facts that changed since the last fixpoint (e.g.
        freshly inserted EDB facts); the delta-driven engine evaluates only
        rules whose bodies can see them, the naive engine re-checks every
        trigger.  The database is updated **in place**; the returned result
        counts only the work of this continuation.  Only the restricted
        chase can be resumed: the oblivious chase would need its
        fired-trigger memory carried across calls.
        """
        if self.mode != RESTRICTED:
            raise ValueError("only the restricted chase supports continuation")
        instance = program.database
        stats = EngineStats(engine=self.engine)
        matcher = matcher_for(self.engine, stats)
        merge_counter = self._index_merge_counter(matcher)
        merge_base = merge_counter() if merge_counter else 0

        if self.engine == NAIVE:
            steps, rounds, egd_merges = self._run_naive(
                program, instance, nulls, matcher, provenance)
        else:
            seed_delta: List[Fact] = [(predicate, tuple(row))
                                      for predicate, row in seed]
            steps, rounds, egd_merges = self._run_delta(
                program, instance, nulls, matcher, provenance,
                initial_delta=seed_delta)

        stats.triggers_fired = steps
        stats.rounds = rounds
        stats.egd_merges = egd_merges
        if merge_counter:
            stats.index_delta_merges = merge_counter() - merge_base
        return ChaseResult(
            instance=instance, steps=steps, rounds=rounds, terminated=True,
            mode=self.mode, egd_merges=egd_merges, violations=[],
            engine=self.engine, stats=stats, provenance=provenance,
        )

    def repair_after_deletion(self, program: DatalogProgram,
                              deleted: Iterable[Fact], nulls: NullFactory,
                              provenance: Optional[Provenance] = None
                              ) -> ChaseResult:
        """Restore the fixpoint after the ``deleted`` facts were removed.

        Deleting a fact can leave a TGD trigger newly unsatisfied: the
        restricted chase had skipped it because the deleted fact witnessed
        its head.  Any such trigger's head atom unifies with the deleted
        fact on its universal positions, so the repair enumerates, per
        (deleted fact, rule head atom) pair, only the body homomorphisms
        extending that unification — with the head variables bound the join
        probes indexes instead of scanning — fires the ones whose heads are
        no longer satisfied, and lets a normal delta-driven continuation
        propagate.  Rules whose heads cannot produce a deleted fact are
        never touched.
        """
        if self.mode != RESTRICTED:
            raise ValueError("only the restricted chase supports repair")
        instance = program.database
        stats = EngineStats(engine=self.engine)
        matcher = matcher_for(self.engine, stats)
        merge_counter = self._index_merge_counter(matcher)
        merge_base = merge_counter() if merge_counter else 0

        if self.engine == NAIVE:
            steps, rounds, egd_merges = self._run_naive(
                program, instance, nulls, matcher, provenance)
        else:
            steps = 0
            seed_delta: List[Fact] = []
            heads_by_predicate: Dict[str, List[Tuple[TGD, Atom, Set[Variable]]]] = {}
            for tgd in program.tgds:
                existentials = set(tgd.existential_variables())
                for atom in tgd.head:
                    heads_by_predicate.setdefault(atom.predicate, []).append(
                        (tgd, atom, existentials))
            # per-tuple: ok — deleted facts are O(update), not O(data)
            for predicate, row in deleted:
                for tgd, head_atom, existentials in \
                        heads_by_predicate.get(predicate, ()):
                    unified = match_atom_against_row(head_atom, row)
                    if unified is None:
                        continue
                    # Existential positions of the head are witnessed by *any*
                    # value; only the universal bindings constrain the body.
                    seed = {variable: term for variable, term in unified.items()
                            if variable not in existentials}
                    triggers = list(matcher.find_homomorphisms(
                        tgd.body, instance, substitution=seed))
                    for homomorphism in triggers:
                        if self._head_satisfied(tgd, homomorphism, instance,
                                                matcher):
                            continue
                        seed_delta.extend(self._apply_tgd(
                            tgd, homomorphism, instance, nulls, provenance))
                        steps += 1
                        self._check_budget(steps)
            more_steps, rounds, egd_merges = self._run_delta(
                program, instance, nulls, matcher, provenance,
                initial_delta=seed_delta) if seed_delta else (0, 0, 0)
            steps += more_steps

        stats.triggers_fired = steps
        stats.rounds = rounds
        stats.egd_merges = egd_merges
        if merge_counter:
            stats.index_delta_merges = merge_counter() - merge_base
        return ChaseResult(
            instance=instance, steps=steps, rounds=rounds, terminated=True,
            mode=self.mode, egd_merges=egd_merges, violations=[],
            engine=self.engine, stats=stats, provenance=provenance,
        )

    # -- naive engine: recompute every trigger each round ---------------------

    def _run_naive(self, program: DatalogProgram, instance: DatabaseInstance,
                   nulls: NullFactory, matcher: Matcher,
                   provenance: Optional[Provenance] = None) -> Tuple[int, int, int]:
        steps = 0
        rounds = 0
        egd_merges = 0
        applied_triggers: Set[Tuple[int, Tuple]] = set()

        changed = True
        while changed:
            rounds += 1
            changed = False

            # EGDs first: they may merge nulls and unblock/blot out TGD triggers.
            merges = self._apply_egds_naive(program.egds, instance, matcher)
            if merges:
                egd_merges += merges
                changed = True

            for index, tgd in enumerate(program.tgds):
                triggers = list(matcher.find_homomorphisms(tgd.body, instance))
                for homomorphism in triggers:
                    if self.mode == OBLIVIOUS:
                        # Only the oblivious chase needs fired-trigger memory;
                        # the restricted chase dedupes via head satisfaction.
                        trigger_key = self._trigger_key(index, tgd, homomorphism)
                        if trigger_key in applied_triggers:
                            continue
                        applied_triggers.add(trigger_key)
                    elif self._head_satisfied(tgd, homomorphism, instance, matcher):
                        continue
                    self._apply_tgd(tgd, homomorphism, instance, nulls, provenance)
                    steps += 1
                    changed = True
                    self._check_budget(steps)
        return steps, rounds, egd_merges

    def _apply_egds_naive(self, egds: Sequence[EGD], instance: DatabaseInstance,
                          matcher: Matcher) -> int:
        """Apply EGDs to a fixpoint by full recomputation; return merge count."""
        merges = 0
        changed = True
        while changed:
            changed = False
            for egd in egds:
                for homomorphism in list(matcher.find_homomorphisms(egd.body, instance)):
                    keep_drop = self._egd_decision(egd, homomorphism)
                    if keep_drop is None:
                        continue
                    keep, drop = keep_drop
                    self._replace_value_naive(instance, drop, keep, matcher.stats)
                    merges += 1
                    changed = True
        return merges

    @staticmethod
    def _replace_value_naive(instance: DatabaseInstance, old: object, new: object,
                             stats: EngineStats) -> None:
        for relation in instance:
            stats.rows_scanned += len(relation)
            affected = [row for row in relation.rows() if old in row]
            for row in affected:  # per-tuple: ok — naive engine, reference semantics
                relation.discard(row)
                relation.add(tuple(new if value == old else value for value in row))
                stats.rows_rewritten += 1

    # -- indexed engine: delta-driven rounds ----------------------------------

    def _batcher(self, matcher: Matcher, nulls: NullFactory):
        """A batched trigger applier, when the engine can feed one.

        Only the columnar matcher exposes the binding-table surface, and only
        the restricted chase has batch-exact semantics (the oblivious chase
        needs per-trigger fired memory).  Imported lazily so the indexed
        engine never pays the columnar import.
        """
        if self.mode != RESTRICTED or not hasattr(matcher, "delta_binding_table"):
            return None
        from ..engine.triggers import TriggerBatcher
        return TriggerBatcher(matcher, nulls)

    def _run_delta(self, program: DatalogProgram, instance: DatabaseInstance,
                   nulls: NullFactory, matcher: Matcher,
                   provenance: Optional[Provenance] = None,
                   initial_delta: Optional[List[Fact]] = None
                   ) -> Tuple[int, int, int]:
        steps = 0
        rounds = 0
        egd_merges = 0
        applied_triggers: Set[Tuple[int, Tuple]] = set()
        tgds = list(program.tgds)
        tgd_body_preds = [tgd.body_predicates() for tgd in tgds]
        egd_body_preds = [egd.body_predicates() for egd in program.egds]
        batcher = self._batcher(matcher, nulls)

        # ``delta`` holds the facts that became true (or were rewritten by EGD
        # merges) in the previous round; ``None`` means "first round, evaluate
        # everything".  A continuation passes ``initial_delta`` — the facts
        # that changed since the last fixpoint — so even the first round is
        # delta-driven.  A rule whose body shares no predicate with the delta
        # cannot have gained a new trigger and is skipped.
        delta: Optional[List[Fact]] = initial_delta
        while True:
            rounds += 1
            new_delta: List[Fact] = []
            delta_preds = None if delta is None else \
                {predicate for predicate, _ in delta}

            merges = self._apply_egds_delta(program.egds, egd_body_preds, instance,
                                            delta, delta_preds, new_delta, matcher,
                                            batcher)
            egd_merges += merges

            produced = 0
            for index, tgd in enumerate(tgds):
                if delta_preds is not None and not (tgd_body_preds[index] & delta_preds):
                    matcher.stats.rules_skipped_by_delta += 1
                    continue
                if batcher is not None:
                    outcome = batcher.apply(index, tgd, instance, delta,
                                            provenance)
                    if outcome is not None:
                        steps += outcome.fired
                        produced += outcome.fired
                        new_delta.extend(outcome.novel)
                        if outcome.fired:
                            self._check_budget(steps)
                        continue
                triggers = list(iter_delta_joins(
                    matcher, tgd.body, tgd.body_variables(), instance, delta))
                for homomorphism in triggers:
                    if self.mode == OBLIVIOUS:
                        # Only the oblivious chase needs fired-trigger memory;
                        # the restricted chase dedupes via head satisfaction.
                        trigger_key = self._trigger_key(index, tgd, homomorphism)
                        if trigger_key in applied_triggers:
                            continue
                        applied_triggers.add(trigger_key)
                    elif self._head_satisfied(tgd, homomorphism, instance, matcher):
                        continue
                    # per-tuple: ok — fallback path for batch-ineligible rules
                    for predicate, row in self._apply_tgd(
                            tgd, homomorphism, instance, nulls, provenance):
                        new_delta.append((predicate, row))
                    steps += 1
                    produced += 1
                    self._check_budget(steps)

            if merges == 0 and produced == 0:
                break
            delta = new_delta
        return steps, rounds, egd_merges

    def _apply_egds_delta(self, egds: Sequence[EGD], egd_body_preds: Sequence[Set[str]],
                          instance: DatabaseInstance, delta: Optional[List[Fact]],
                          delta_preds: Optional[Set[str]], new_delta: List[Fact],
                          matcher: Matcher, batcher=None) -> int:
        """Apply EGDs to a fixpoint, delta-driven; rewritten rows feed both the
        inner fixpoint and the caller's round delta.

        With a batcher the candidate triggers are pre-filtered on the code
        columns (only bindings whose two sides actually differ are decoded);
        the merges themselves stay per-merge — they are rare and rewrite
        arbitrary rows through the null-occurrence index.
        """
        if not egds:
            return 0
        merges = 0
        current_delta = delta
        current_preds = delta_preds
        while True:
            pass_merges = 0
            local_delta: List[Fact] = []
            for index, egd in enumerate(egds):
                if current_preds is not None and not (egd_body_preds[index] & current_preds):
                    matcher.stats.rules_skipped_by_delta += 1
                    continue
                triggers = batcher.egd_candidates(egd, instance, current_delta) \
                    if batcher is not None else None
                if triggers is None:
                    triggers = list(iter_delta_joins(
                        matcher, egd.body, egd.body_variables(), instance,
                        current_delta))
                for homomorphism in triggers:
                    # Earlier merges may have rewritten this trigger's facts;
                    # the rewritten facts are in the local delta and will be
                    # re-derived, so a stale trigger is simply skipped.
                    if not self._trigger_live(egd.body, homomorphism, instance, matcher):
                        continue
                    keep_drop = self._egd_decision(egd, homomorphism)
                    if keep_drop is None:
                        continue
                    keep, drop = keep_drop
                    # per-tuple: ok — rewritten rows are O(merge), not O(data)
                    for predicate, row in self._replace_value_indexed(
                            instance, drop, keep, matcher.stats):
                        local_delta.append((predicate, row))
                        new_delta.append((predicate, row))
                    pass_merges += 1
            if pass_merges == 0:
                break
            merges += pass_merges
            current_delta = local_delta
            current_preds = {predicate for predicate, _ in local_delta}
        return merges

    @staticmethod
    def _trigger_live(body: Sequence[Atom], homomorphism: Substitution,
                      instance: DatabaseInstance, matcher: Matcher) -> bool:
        """``True`` iff every grounded body fact of the trigger still exists."""
        for atom in body:
            grounded = apply_to_atom(homomorphism, atom)
            matcher.stats.index_probes += 1
            if grounded.to_fact_row() not in instance.relation(grounded.predicate):
                return False
        return True

    @staticmethod
    def _replace_value_indexed(instance: DatabaseInstance, old: object, new: object,
                               stats: EngineStats) -> List[Tuple[str, Tuple]]:
        """Rewrite ``old`` to ``new`` touching only rows that contain ``old``
        (found through the per-relation occurrence index)."""
        rewritten: List[Tuple[str, Tuple]] = []
        for relation in instance:
            stats.index_probes += 1
            # per-tuple: ok — only rows holding the merged value (occurrence index)
            for row in relation.rows_with_value(old):
                relation.discard(row)
                new_row = tuple(new if value == old else value for value in row)
                relation.add(new_row)
                stats.rows_rewritten += 1
                rewritten.append((relation.schema.name, new_row))
        return rewritten

    # -- shared pieces --------------------------------------------------------

    @staticmethod
    def _index_merge_counter(matcher: Matcher):
        """The process-wide group-index delta-merge counter, when the engine
        maintains group indexes (columnar only — sampled before/after a run
        to report ``index_delta_merges``).  Imported lazily so the other
        engines never load the columns module (and numpy) at all."""
        if not hasattr(matcher, "delta_binding_table"):
            return None
        from ..relational.columns import index_delta_merge_count
        return index_delta_merge_count

    def _check_budget(self, steps: int) -> None:
        if steps > self.max_steps:
            raise ChaseNonTerminationError(
                f"chase exceeded the budget of {self.max_steps} trigger applications; "
                "the program may have a non-terminating chase")

    def _egd_decision(self, egd: EGD,
                      homomorphism: Substitution) -> Optional[Tuple[object, object]]:
        """Decide an EGD trigger: ``None`` (already equal), ``(keep, drop)``,
        or raise on a hard conflict between distinct constants."""
        left = term_value(apply_to_term(homomorphism, egd.left))
        right = term_value(apply_to_term(homomorphism, egd.right))
        if left == right:
            return None
        if not isinstance(left, Null) and not isinstance(right, Null):
            raise EGDConflictError(
                f"EGD [{egd}] requires equating distinct constants "
                f"{left!r} and {right!r}",
                constraint=egd,
                witness={v.name: term_value(apply_to_term(homomorphism, v))
                         for v in egd.body_variables()})
        # Replace the null by the other value (prefer keeping constants).
        if isinstance(left, Null) and not isinstance(right, Null):
            return right, left
        if isinstance(right, Null) and not isinstance(left, Null):
            return left, right
        # two nulls: keep the lexicographically smaller label
        keep, drop = sorted((left, right), key=lambda n: n.label)
        return keep, drop

    @staticmethod
    def _trigger_key(index: int, tgd: TGD, homomorphism: Substitution) -> Tuple[int, Tuple]:
        relevant = tuple(
            (variable.name, term_value(apply_to_term(homomorphism, variable)))
            for variable in sorted(tgd.body_variables(), key=lambda v: v.name)
        )
        return (index, relevant)

    @staticmethod
    def _head_satisfied(tgd: TGD, homomorphism: Substitution,
                        instance: DatabaseInstance, matcher: Matcher) -> bool:
        """Check if the head already holds under some extension of the trigger."""
        partial_head = [apply_to_atom(homomorphism, atom) for atom in tgd.head]
        return matcher.has_homomorphism(partial_head, instance)

    def _apply_tgd(self, tgd: TGD, homomorphism: Substitution,
                   instance: DatabaseInstance, nulls: NullFactory,
                   provenance: Optional[Provenance] = None) -> List[Fact]:
        """Fire a trigger; return the head facts that were actually new."""
        extended: Substitution = dict(homomorphism)
        for variable in tgd.existential_variables():
            extended[variable] = nulls.fresh()
        added: List[Fact] = []
        for atom in tgd.head:
            grounded = apply_to_atom(extended, atom)
            row = grounded.to_fact_row()
            if instance.add(grounded.predicate, row):
                added.append((grounded.predicate, row))
        if provenance is not None and added:
            body_facts = tuple(
                (grounded_body.predicate, grounded_body.to_fact_row())
                for grounded_body in
                (apply_to_atom(homomorphism, atom) for atom in tgd.body))
            for fact in added:
                provenance.setdefault(fact, body_facts)
        return added

    # -- negative constraints ------------------------------------------------

    def _check_constraints(self, constraints: Sequence[NegativeConstraint],
                           instance: DatabaseInstance,
                           matcher: Matcher) -> List[ConstraintViolation]:
        violations: List[ConstraintViolation] = []
        for constraint in constraints:
            for homomorphism in matcher.find_homomorphisms(
                    constraint.body, instance, comparisons=constraint.comparisons):
                witness = {
                    variable.name: term_value(apply_to_term(homomorphism, variable))
                    for variable in constraint.body_variables()
                }
                violation = ConstraintViolation(constraint, witness)
                if self.fail_fast:
                    raise InconsistencyError(
                        f"negative constraint violated: {violation}",
                        constraint=constraint, witness=witness)
                violations.append(violation)
                break  # one witness per constraint is enough for reporting
        return violations


def chase(program: DatalogProgram, mode: str = RESTRICTED,
          max_steps: int = 100_000, check_constraints: bool = True,
          fail_fast: bool = False, engine: Optional[str] = None) -> ChaseResult:
    """Convenience wrapper: run the chase with a one-off engine."""
    runner = ChaseEngine(mode=mode, max_steps=max_steps,
                         check_constraints=check_constraints, fail_fast=fail_fast,
                         engine=engine)
    return runner.run(program)
