"""First-order (UCQ) query rewriting for non-recursive Datalog± rule sets.

Section IV of the paper points out that MD ontologies whose dimensional
rules only perform **upward navigation** admit first-order query rewriting:
the conjunctive query posed against the ontology can be rewritten into a
union of conjunctive queries (UCQ) that is evaluated directly over the
extensional database, with no data generation at all.  Upward-navigating
rule sets are non-recursive through the category hierarchy (a roll-up never
returns to a lower level), which is the property the rewriting relies on.

The rewriting implemented here is the classical unfolding-based procedure
(in the style of PerfectRef / the Gottlob–Orsi–Pieris rewriting, restricted
to non-recursive rule sets, which is all the paper needs):

* start from the input query;
* repeatedly pick an atom whose predicate occurs in some TGD head, unify the
  atom with the (standardized-apart) head and replace it by the rule body —
  provided the unification respects the *applicability condition* on
  existential variables (an existential head variable may only be unified
  with a non-answer, non-shared, non-compared query variable, never with a
  constant);
* collect every CQ produced this way; the final rewriting is the union of
  those CQs, evaluated over the extensional data only.

For recursive rule sets the procedure would not terminate; a
:class:`~repro.errors.RewritingError` is raised instead (the caller should
fall back to the chase or to :class:`~repro.datalog.ws_qa.DeterministicWSQAns`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..errors import RewritingError
from ..relational.instance import DatabaseInstance
from .answering import AnswerTuple, evaluate_query
from .atoms import Atom, Comparison
from .classes import is_non_recursive
from .program import DatalogProgram
from .rules import ConjunctiveQuery, TGD
from .terms import Term, Variable
from .unify import Substitution, apply_to_atom, apply_to_term, unify_atoms


@dataclass
class Rewriting:
    """A UCQ rewriting of a conjunctive query."""

    original: ConjunctiveQuery
    queries: List[ConjunctiveQuery]

    def __len__(self) -> int:
        return len(self.queries)

    def evaluate(self, database: DatabaseInstance) -> Tuple[AnswerTuple, ...]:
        """Evaluate the UCQ over ``database``; the union of the answers as
        an immutable, canonically sorted tuple."""
        answers: Set[AnswerTuple] = set()
        for query in self.queries:
            answers.update(evaluate_query(query, database, allow_nulls=False))
        return tuple(sorted(answers, key=lambda row: tuple(map(str, row))))

    def holds(self, database: DatabaseInstance) -> bool:
        """Boolean evaluation of the UCQ over ``database``."""
        if self.original.is_boolean():
            from .answering import evaluate_boolean_query
            return any(evaluate_boolean_query(query, database) for query in self.queries)
        return bool(self.evaluate(database))


class QueryRewriter:
    """Unfolding-based UCQ rewriter for non-recursive TGD sets.

    Parameters
    ----------
    tgds:
        The rule set; must be non-recursive (checked unless
        ``assume_non_recursive`` is set).
    max_queries:
        Safety cap on the size of the produced UCQ.
    """

    def __init__(self, tgds: Sequence[TGD], max_queries: int = 10_000,
                 assume_non_recursive: bool = False):
        self.tgds = list(tgds)
        self.max_queries = max_queries
        if not assume_non_recursive and not is_non_recursive(self.tgds):
            raise RewritingError(
                "the rule set is recursive; first-order rewriting is only "
                "supported for non-recursive (e.g. upward-navigation-only) rule sets"
            )
        self._rename_counter = itertools.count(1)
        self._rules_by_head: Dict[str, List[Tuple[TGD, int]]] = {}
        for tgd in self.tgds:
            for head_index, atom in enumerate(tgd.head):
                self._rules_by_head.setdefault(atom.predicate, []).append((tgd, head_index))

    # -- public API ------------------------------------------------------------

    def rewrite(self, query: ConjunctiveQuery) -> Rewriting:
        """Rewrite ``query`` into a UCQ over (mostly) extensional predicates."""
        seen: Set[Tuple] = set()
        worklist: List[ConjunctiveQuery] = [query]
        produced: List[ConjunctiveQuery] = []
        while worklist:
            current = worklist.pop()
            key = self._canonical_key(current)
            if key in seen:
                continue
            seen.add(key)
            produced.append(current)
            if len(produced) > self.max_queries:
                raise RewritingError(
                    f"rewriting exceeded {self.max_queries} conjunctive queries; "
                    "the rule set is too prolific for UCQ rewriting")
            for successor in self._unfoldings(current):
                if self._canonical_key(successor) not in seen:
                    worklist.append(successor)
        return Rewriting(original=query, queries=produced)

    def answers(self, query: ConjunctiveQuery, database: DatabaseInstance) -> Tuple[AnswerTuple, ...]:
        """Rewrite and evaluate in one step."""
        return self.rewrite(query).evaluate(database)

    # -- unfolding -------------------------------------------------------------

    def _unfoldings(self, query: ConjunctiveQuery) -> Iterable[ConjunctiveQuery]:
        protected = self._protected_variables(query)
        for atom_index, atom in enumerate(query.body):
            for tgd, head_index in self._rules_by_head.get(atom.predicate, ()):
                renamed_head, renamed_body, existentials = self._rename_rule(tgd)
                unifier = unify_atoms(atom, renamed_head[head_index])
                if unifier is None:
                    continue
                if not self._applicable(unifier, existentials, protected, query, atom_index):
                    continue
                new_body = [
                    apply_to_atom(unifier, body_atom)
                    for index, body_atom in enumerate(query.body)
                    if index != atom_index
                ]
                new_body.extend(apply_to_atom(unifier, body_atom) for body_atom in renamed_body)
                new_comparisons = [
                    Comparison(c.op,
                               apply_to_term(unifier, c.left),
                               apply_to_term(unifier, c.right))
                    for c in query.comparisons
                ]
                # Answer variables must remain variables in the rewritten CQ.
                # Rule heads of MD ontologies never carry constants at frontier
                # positions, so a unification that sends an answer variable to
                # a constant is a corner case we conservatively skip (sound,
                # and complete for the rule shapes used by the paper).
                new_answer_variables: List[Variable] = []
                skip = False
                for variable in query.answer_variables:
                    target = apply_to_term(unifier, variable)
                    if not isinstance(target, Variable):
                        skip = True
                        break
                    new_answer_variables.append(target)
                if skip:
                    continue
                try:
                    yield ConjunctiveQuery(new_answer_variables, new_body,
                                           new_comparisons, name=query.name)
                except Exception:
                    # Unfoldings that break query safety are simply skipped.
                    continue

    def _rename_rule(self, tgd: TGD) -> Tuple[List[Atom], List[Atom], Set[Variable]]:
        suffix = next(self._rename_counter)
        mapping: Dict[Variable, Term] = {}
        for variable in (*tgd.body_variables(), *tgd.head_variables()):
            mapping.setdefault(variable, Variable(f"{variable.name}__u{suffix}"))
        head = [apply_to_atom(mapping, atom) for atom in tgd.head]
        body = [apply_to_atom(mapping, atom) for atom in tgd.body]
        existentials = {mapping[v] for v in tgd.existential_variables()
                        if isinstance(mapping[v], Variable)}
        return head, body, existentials

    @staticmethod
    def _protected_variables(query: ConjunctiveQuery) -> Set[Variable]:
        """Variables an existential head variable must not be unified with.

        Answer variables, variables occurring in comparisons, and variables
        shared between two body atoms are protected: unifying them with an
        existential would claim that a chase-invented null equals an
        observable value, which is unsound.
        """
        protected: Set[Variable] = set(query.answer_variables)
        for comparison in query.comparisons:
            protected.update(comparison.variables())
        counts: Dict[Variable, int] = {}
        for atom in query.body:
            for variable in set(atom.variables()):
                counts[variable] = counts.get(variable, 0) + 1
        protected.update(v for v, count in counts.items() if count > 1)
        return protected

    def _applicable(self, unifier: Substitution, existentials: Set[Variable],
                    protected: Set[Variable], query: ConjunctiveQuery,
                    atom_index: int) -> bool:
        """Check the existential-variable applicability condition.

        An existential head variable stands for a chase-invented null.  The
        unfolding is applicable only if, under the unifier, no existential is
        (transitively) identified with a constant or with a *protected* query
        variable — an answer variable, a variable used in a comparison, a
        variable shared between body atoms, or a variable repeated within the
        unfolded atom.  Unification may have oriented the binding either way
        (query variable ↦ existential or existential ↦ query variable), so
        both sides are normalized through the unifier before comparison.
        """
        atom = query.body[atom_index]
        repeated_in_atom = {
            variable for variable in atom.variables()
            if sum(1 for term in atom.terms if term == variable) > 1
        }
        existential_images = set()
        for existential in existentials:
            image = apply_to_term(unifier, existential)
            if not isinstance(image, Variable):
                # Identified with a constant (or a null): not applicable.
                return False
            existential_images.add(image)
        for variable in protected | repeated_in_atom:
            if apply_to_term(unifier, variable) in existential_images:
                return False
        return True

    @staticmethod
    def _canonical_key(query: ConjunctiveQuery) -> Tuple:
        """A structural key used to deduplicate rewritten queries.

        Variables are canonicalized by order of first occurrence so that
        alphabetic renamings of the same query collapse to one entry.
        """
        mapping: Dict[Variable, str] = {}

        def canon(term: Term) -> str:
            if isinstance(term, Variable):
                if term not in mapping:
                    mapping[term] = f"V{len(mapping)}"
                return mapping[term]
            return f"c:{term!r}"

        body_key = tuple(
            (atom.predicate, tuple(canon(term) for term in atom.terms))
            for atom in query.body
        )
        answer_key = tuple(canon(variable) for variable in query.answer_variables)
        comparison_key = tuple(
            (comparison.op, canon(comparison.left), canon(comparison.right))
            for comparison in query.comparisons
        )
        return (answer_key, tuple(sorted(body_key)), tuple(sorted(comparison_key)))


def rewrite_and_answer(program: DatalogProgram, query: ConjunctiveQuery) -> Tuple[AnswerTuple, ...]:
    """Rewrite ``query`` over ``program``'s TGDs and evaluate over its data."""
    rewriter = QueryRewriter(program.tgds)
    return rewriter.answers(query, program.database)
