"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch a single base class.  Sub-hierarchies mirror the package
layout: relational substrate, Datalog± engine, multidimensional model,
MD ontologies, and the data-quality framework.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


# ---------------------------------------------------------------------------
# Relational substrate
# ---------------------------------------------------------------------------

class RelationalError(ReproError):
    """Base class for errors in the relational substrate."""


class SchemaError(RelationalError):
    """A relation schema is malformed or used inconsistently."""


class UnknownRelationError(RelationalError):
    """A relation name was not found in a database schema or instance."""


class ArityError(RelationalError):
    """A tuple, atom or query uses the wrong number of attributes."""


class DuplicateRelationError(RelationalError):
    """A relation with the same name was registered twice."""


# ---------------------------------------------------------------------------
# Datalog± engine
# ---------------------------------------------------------------------------

class DatalogError(ReproError):
    """Base class for errors in the Datalog± engine."""


class ParseError(DatalogError):
    """A textual rule, atom or query could not be parsed."""

    def __init__(self, message: str, text: str = "", position: int = -1):
        self.text = text
        self.position = position
        if text and position >= 0:
            message = f"{message} (at position {position} in {text!r})"
        super().__init__(message)


class UnsafeRuleError(DatalogError):
    """A rule violates a safety condition (e.g. unbound head variable)."""


class ChaseNonTerminationError(DatalogError):
    """The chase exceeded its step or depth budget without terminating."""


class InconsistencyError(DatalogError):
    """A negative constraint or a non-separable EGD is violated.

    Carries the violated constraint and the homomorphism that witnesses the
    violation, so callers can report *why* the ontology (or the data mapped
    into it) is inconsistent.
    """

    def __init__(self, message: str, constraint=None, witness=None):
        super().__init__(message)
        self.constraint = constraint
        self.witness = witness


class EGDConflictError(InconsistencyError):
    """An EGD requires equating two distinct constants (a hard violation)."""


class QueryAnsweringError(DatalogError):
    """A query could not be answered (unsupported shape, missing data...)."""


class RewritingError(DatalogError):
    """A rule set is not eligible for first-order query rewriting."""


# ---------------------------------------------------------------------------
# Engine sessions: persistence and versioning
# ---------------------------------------------------------------------------

class SnapshotError(ReproError):
    """A materialization snapshot cannot be written or restored.

    Every failure mode of :mod:`repro.engine.snapshot` raises a subclass of
    this error with an actionable message — a corrupted or stale snapshot is
    rejected loudly, never deserialized into a silently wrong instance.
    """


class SnapshotFormatError(SnapshotError):
    """The file is not a snapshot, or uses an unsupported format version."""


class SnapshotIntegrityError(SnapshotError):
    """The snapshot file is truncated or corrupted (checksum mismatch)."""


class SnapshotMismatchError(SnapshotError):
    """The snapshot was taken against a different ontology or database.

    Restoring it would silently answer queries for stale rules or data;
    re-chase from the current program instead."""


class VersioningError(ReproError):
    """A versioned-relation operation is invalid (unknown version, bad pin)."""


# ---------------------------------------------------------------------------
# Serving layer: write-ahead log, daemon, wire protocol
# ---------------------------------------------------------------------------

class ServingError(ReproError):
    """Base class for errors in the serving layer (WAL, daemon, client)."""


class WALError(ServingError):
    """A write-ahead log cannot be written, read or replayed."""


class WALFormatError(WALError):
    """The file is not a WAL, or uses an unsupported WAL format version."""


class WALCorruptionError(WALError):
    """The WAL is damaged *before* its tail (a hole in the record sequence).

    A torn tail — the suffix a crash cut short — is recovered from by
    truncating to the last durable record; damage followed by further valid
    records means lost updates and is refused loudly instead."""


class ServingProtocolError(ServingError):
    """A serving request or response violates the line-JSON protocol, or the
    daemon reported an error for the request.

    When the daemon reported the error, :attr:`remote_type` carries the
    original exception class name."""

    def __init__(self, message: str, remote_type: str = ""):
        super().__init__(message)
        self.remote_type = remote_type


class DaemonUnavailableError(ServingError):
    """No serving daemon is reachable at the given address or data directory."""


class AdmissionError(ServingError):
    """Base class for typed admission refusals: the daemon declined to take
    the request on, without attempting it.  Nothing was logged or applied —
    a refused write is never partially durable, so retrying is always safe."""


class RequestTooLargeError(AdmissionError):
    """The request exceeds the daemon's admission limits (raw bytes on the
    wire, facts per write, or concurrent in-flight writes per connection)."""


class ServerBusyError(AdmissionError):
    """The daemon's bounded commit queue is full; back off and retry.

    :attr:`retry_after` is the daemon's estimate (seconds) of when queue
    space is likely to be free — clients should treat it as a floor for
    their backoff delay, never as a promise."""

    def __init__(self, message: str, retry_after: float = 0.0):
        super().__init__(message)
        self.retry_after = retry_after


class AuthenticationError(ServingError):
    """The connection has not completed (or failed) the shared-secret auth
    handshake this daemon requires; every operation is refused until a
    fresh ``auth_challenge`` + ``auth`` exchange succeeds."""


class DaemonShutdownError(ServingError):
    """The daemon stopped while the request was queued or in flight.

    Raised (never silently dropped) for every writer still blocked on the
    commit queue when :meth:`ServingDaemon.stop` runs, so no client thread
    is ever stranded waiting on an event nobody will set."""


# ---------------------------------------------------------------------------
# Multidimensional model
# ---------------------------------------------------------------------------

class MDModelError(ReproError):
    """Base class for errors in the extended HM multidimensional model."""


class DimensionSchemaError(MDModelError):
    """A dimension schema is malformed (cycle, missing category...)."""


class DimensionInstanceError(MDModelError):
    """A dimension instance violates its schema (bad member, bad edge...)."""


class CategoricalRelationError(MDModelError):
    """A categorical relation schema or instance is malformed."""


class NavigationError(MDModelError):
    """A roll-up or drill-down between two categories is impossible."""


# ---------------------------------------------------------------------------
# MD ontologies (the paper's core contribution)
# ---------------------------------------------------------------------------

class OntologyError(ReproError):
    """Base class for errors in the MD ontology layer."""


class DimensionalRuleError(OntologyError):
    """A dimensional rule does not match the paper's forms (4) or (10)."""


class DimensionalConstraintError(OntologyError):
    """A dimensional constraint does not match the paper's forms (1)-(3)."""


class NotWeaklyStickyError(OntologyError):
    """The compiled Datalog± program is not weakly sticky."""


class SeparabilityError(OntologyError):
    """EGDs are not separable from the TGDs of the ontology."""


# ---------------------------------------------------------------------------
# Data-quality framework
# ---------------------------------------------------------------------------

class QualityError(ReproError):
    """Base class for errors in the contextual data-quality framework."""


class ContextError(QualityError):
    """A context specification is malformed (bad mapping, missing schema)."""


class QualityVersionError(QualityError):
    """A quality-version specification cannot be evaluated."""
