"""Dimension instances and full multidimensional instances.

A dimension instance (Section II) populates a dimension schema with
*members* for each category and a child→parent relation between members
that parallels the child→parent relation between categories
(``W1 → Standard → H1`` in the Hospital dimension of Fig. 1).  The
transitive closure of the member-level relation is the roll-up relation
used by upward and downward dimensional navigation.

An :class:`MDInstance` bundles the dimension instances with the extensions
of the categorical relations (stored in a plain
:class:`~repro.relational.instance.DatabaseInstance`), forming the
multidimensional half of a context.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import CategoricalRelationError, DimensionInstanceError, NavigationError
from ..relational.instance import DatabaseInstance, Relation
from .relations import CategoricalRelationSchema
from .schema import DimensionSchema


class DimensionInstance:
    """Members and member-level child→parent edges of one dimension."""

    def __init__(self, schema: DimensionSchema):
        self.schema = schema
        self._members: Dict[str, Set[Any]] = {category: set() for category in schema.categories}
        #: (child_category, parent_category) -> set of (child_member, parent_member)
        self._edges: Dict[Tuple[str, str], Set[Tuple[Any, Any]]] = {}

    # -- construction ---------------------------------------------------------

    def add_member(self, category: str, member: Any) -> Any:
        """Add ``member`` to ``category`` (idempotent)."""
        if category not in self.schema:
            raise DimensionInstanceError(
                f"dimension {self.schema.name!r} has no category {category!r}")
        self._members.setdefault(category, set()).add(member)
        return member

    def add_members(self, category: str, members: Iterable[Any]) -> None:
        """Add several members to ``category``."""
        for member in members:
            self.add_member(category, member)

    def add_edge(self, child_category: str, child_member: Any,
                 parent_category: str, parent_member: Any) -> None:
        """Record that ``child_member`` rolls up to ``parent_member``.

        Both members are auto-registered.  The pair of categories must be an
        edge of the dimension schema.
        """
        if (child_category, parent_category) not in self.schema.edges:
            raise DimensionInstanceError(
                f"dimension {self.schema.name!r}: {child_category!r} -> "
                f"{parent_category!r} is not an edge of the category graph")
        self.add_member(child_category, child_member)
        self.add_member(parent_category, parent_member)
        self._edges.setdefault((child_category, parent_category), set()).add(
            (child_member, parent_member))

    def add_child_parent(self, child_category: str, parent_category: str,
                         pairs: Iterable[Tuple[Any, Any]]) -> None:
        """Bulk variant of :meth:`add_edge`."""
        for child_member, parent_member in pairs:
            self.add_edge(child_category, child_member, parent_category, parent_member)

    # -- inspection -----------------------------------------------------------

    def members(self, category: str) -> Set[Any]:
        """Members of ``category``."""
        if category not in self.schema:
            raise DimensionInstanceError(
                f"dimension {self.schema.name!r} has no category {category!r}")
        return set(self._members.get(category, set()))

    def all_members(self) -> Dict[str, Set[Any]]:
        """All members, per category."""
        return {category: set(members) for category, members in self._members.items()}

    def member_count(self) -> int:
        """Total number of members across all categories."""
        return sum(len(members) for members in self._members.values())

    def has_member(self, category: str, member: Any) -> bool:
        """``True`` if ``member`` belongs to ``category``."""
        return member in self._members.get(category, set())

    def edges_between(self, child_category: str, parent_category: str) -> Set[Tuple[Any, Any]]:
        """Member-level child→parent pairs between two adjacent categories."""
        return set(self._edges.get((child_category, parent_category), set()))

    def category_edges(self) -> List[Tuple[str, str]]:
        """The (child_category, parent_category) pairs that have member edges."""
        return list(self._edges)

    # -- roll-up / drill-down --------------------------------------------------

    def parents_of(self, category: str, member: Any,
                   parent_category: Optional[str] = None) -> Set[Tuple[str, Any]]:
        """Direct parents of a member, as ``(parent_category, parent_member)``."""
        result: Set[Tuple[str, Any]] = set()
        for (child_cat, parent_cat), pairs in self._edges.items():
            if child_cat != category:
                continue
            if parent_category is not None and parent_cat != parent_category:
                continue
            result.update((parent_cat, parent) for child, parent in pairs if child == member)
        return result

    def children_of(self, category: str, member: Any,
                    child_category: Optional[str] = None) -> Set[Tuple[str, Any]]:
        """Direct children of a member, as ``(child_category, child_member)``."""
        result: Set[Tuple[str, Any]] = set()
        for (child_cat, parent_cat), pairs in self._edges.items():
            if parent_cat != category:
                continue
            if child_category is not None and child_cat != child_category:
                continue
            result.update((child_cat, child) for child, parent in pairs if parent == member)
        return result

    def roll_up(self, member: Any, from_category: str, to_category: str) -> Set[Any]:
        """Ancestors of ``member`` in ``to_category`` (upward navigation).

        ``to_category`` must be above ``from_category`` in the schema;
        ``from_category == to_category`` returns the member itself.
        """
        if from_category == to_category:
            return {member} if self.has_member(from_category, member) else set()
        if not self.schema.is_above(to_category, from_category):
            raise NavigationError(
                f"dimension {self.schema.name!r}: cannot roll up from "
                f"{from_category!r} to {to_category!r} (not an ancestor category)")
        frontier: Set[Tuple[str, Any]] = {(from_category, member)}
        result: Set[Any] = set()
        seen: Set[Tuple[str, Any]] = set()
        while frontier:
            category, current = frontier.pop()
            if (category, current) in seen:
                continue
            seen.add((category, current))
            for parent_category, parent_member in self.parents_of(category, current):
                if parent_category == to_category:
                    result.add(parent_member)
                if parent_category == to_category or \
                        self.schema.is_above(to_category, parent_category):
                    frontier.add((parent_category, parent_member))
        return result

    def drill_down(self, member: Any, from_category: str, to_category: str) -> Set[Any]:
        """Descendants of ``member`` in ``to_category`` (downward navigation)."""
        if from_category == to_category:
            return {member} if self.has_member(from_category, member) else set()
        if not self.schema.is_above(from_category, to_category):
            raise NavigationError(
                f"dimension {self.schema.name!r}: cannot drill down from "
                f"{from_category!r} to {to_category!r} (not a descendant category)")
        frontier: Set[Tuple[str, Any]] = {(from_category, member)}
        result: Set[Any] = set()
        seen: Set[Tuple[str, Any]] = set()
        while frontier:
            category, current = frontier.pop()
            if (category, current) in seen:
                continue
            seen.add((category, current))
            for child_category, child_member in self.children_of(category, current):
                if child_category == to_category:
                    result.add(child_member)
                if child_category == to_category or \
                        self.schema.is_above(child_category, to_category):
                    frontier.add((child_category, child_member))
        return result

    def rollup_pairs(self, lower_category: str, higher_category: str) -> Set[Tuple[Any, Any]]:
        """All (lower_member, higher_member) pairs of the transitive roll-up."""
        pairs: Set[Tuple[Any, Any]] = set()
        for member in self.members(lower_category):
            for ancestor in self.roll_up(member, lower_category, higher_category):
                pairs.add((member, ancestor))
        return pairs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        counts = {category: len(members) for category, members in self._members.items()}
        return f"DimensionInstance({self.schema.name!r}, members={counts})"


class MDInstance:
    """A full multidimensional instance: dimensions + categorical relations."""

    def __init__(self):
        self.dimensions: Dict[str, DimensionInstance] = {}
        self.relation_schemas: Dict[str, CategoricalRelationSchema] = {}
        self.database = DatabaseInstance()

    # -- dimensions -----------------------------------------------------------

    def add_dimension(self, instance: DimensionInstance) -> DimensionInstance:
        """Register a dimension instance (replacing any previous same-name one)."""
        self.dimensions[instance.schema.name] = instance
        return instance

    def dimension(self, name: str) -> DimensionInstance:
        """Look up a dimension instance by name."""
        try:
            return self.dimensions[name]
        except KeyError:
            raise DimensionInstanceError(
                f"unknown dimension {name!r}; known dimensions: {sorted(self.dimensions)}"
            ) from None

    # -- categorical relations --------------------------------------------------

    def add_relation(self, schema: CategoricalRelationSchema,
                     rows: Iterable[Sequence[Any]] = ()) -> Relation:
        """Register a categorical relation and optionally load its tuples."""
        for attribute in schema.categorical:
            if attribute.dimension not in self.dimensions:
                raise CategoricalRelationError(
                    f"categorical relation {schema.name!r}: attribute {attribute.name!r} "
                    f"refers to unknown dimension {attribute.dimension!r}")
            if attribute.category not in self.dimensions[attribute.dimension].schema:
                raise CategoricalRelationError(
                    f"categorical relation {schema.name!r}: attribute {attribute.name!r} "
                    f"refers to unknown category {attribute.category!r} of dimension "
                    f"{attribute.dimension!r}")
        self.relation_schemas[schema.name] = schema
        relation = self.database.declare(schema.name, schema.attribute_names)
        relation.add_all(rows)
        return relation

    def relation(self, name: str) -> Relation:
        """The stored extension of a categorical relation."""
        return self.database.relation(name)

    def relation_schema(self, name: str) -> CategoricalRelationSchema:
        """The categorical schema of a relation."""
        try:
            return self.relation_schemas[name]
        except KeyError:
            raise CategoricalRelationError(
                f"unknown categorical relation {name!r}; "
                f"known relations: {sorted(self.relation_schemas)}") from None

    def add_tuples(self, name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Insert tuples into a categorical relation."""
        self.relation_schema(name)
        return self.database.add_all(name, rows)

    def relations(self) -> List[CategoricalRelationSchema]:
        """All categorical relation schemas, in registration order."""
        return list(self.relation_schemas.values())

    def total_tuples(self) -> int:
        """Total number of tuples across categorical relations."""
        return self.database.total_tuples()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MDInstance(dimensions={sorted(self.dimensions)}, "
                f"relations={sorted(self.relation_schemas)})")
