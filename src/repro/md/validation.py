"""Validation of multidimensional schemas and instances.

The HM model comes with well-formedness conditions that make dimensional
navigation well behaved (and summarizable, in OLAP terms — Hurtado,
Gutierrez & Mendelzon, TODS 2005):

* **conformance** — member-level edges only connect members of categories
  that are adjacent in the schema; categorical-relation tuples only use
  members of the category their attribute is linked to;
* **strictness** — every member rolls up to *at most one* member of each
  ancestor category (needed for roll-up to be a function, and assumed by
  the paper when rule (7) produces "the" unit of a ward);
* **homogeneity** (covering) — every member of a non-top category has at
  least one parent in each parent category, so upward navigation never
  dead-ends.

Violations are collected into a :class:`ValidationReport` rather than
raised, because data-quality work routinely needs to *inspect* imperfect
hierarchies rather than refuse them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .instance import DimensionInstance, MDInstance


@dataclass
class ValidationIssue:
    """A single validation finding."""

    kind: str
    dimension: Optional[str]
    subject: str
    detail: str

    def __str__(self) -> str:
        where = f"[{self.dimension}] " if self.dimension else ""
        return f"{self.kind}: {where}{self.subject} — {self.detail}"


@dataclass
class ValidationReport:
    """All findings of a validation pass."""

    issues: List[ValidationIssue] = field(default_factory=list)

    @property
    def is_valid(self) -> bool:
        """``True`` when no issue was found."""
        return not self.issues

    def add(self, kind: str, subject: str, detail: str,
            dimension: Optional[str] = None) -> None:
        """Record one finding."""
        self.issues.append(ValidationIssue(kind, dimension, subject, detail))

    def by_kind(self, kind: str) -> List[ValidationIssue]:
        """Findings of one kind."""
        return [issue for issue in self.issues if issue.kind == kind]

    def summary(self) -> Dict[str, int]:
        """Number of findings per kind."""
        counts: Dict[str, int] = {}
        for issue in self.issues:
            counts[issue.kind] = counts.get(issue.kind, 0) + 1
        return counts

    def __str__(self) -> str:
        if self.is_valid:
            return "validation passed: no issues"
        return "\n".join(str(issue) for issue in self.issues)


def check_dimension_conformance(dimension: DimensionInstance,
                                report: Optional[ValidationReport] = None) -> ValidationReport:
    """Member edges must connect members of schema-adjacent categories."""
    report = report if report is not None else ValidationReport()
    name = dimension.schema.name
    for (child_category, parent_category) in dimension.category_edges():
        if (child_category, parent_category) not in dimension.schema.edges:
            report.add("non_conformant_edge", f"{child_category}->{parent_category}",
                       "member edges exist between categories that are not adjacent "
                       "in the dimension schema", dimension=name)
            continue
        for child_member, parent_member in dimension.edges_between(child_category, parent_category):
            if not dimension.has_member(child_category, child_member):
                report.add("unknown_member", str(child_member),
                           f"appears as a child in {child_category}->{parent_category} "
                           f"but is not a member of {child_category}", dimension=name)
            if not dimension.has_member(parent_category, parent_member):
                report.add("unknown_member", str(parent_member),
                           f"appears as a parent in {child_category}->{parent_category} "
                           f"but is not a member of {parent_category}", dimension=name)
    return report


def check_strictness(dimension: DimensionInstance,
                     report: Optional[ValidationReport] = None) -> ValidationReport:
    """Each member must roll up to at most one member per ancestor category."""
    report = report if report is not None else ValidationReport()
    schema = dimension.schema
    for category in schema.categories:
        for ancestor_category in schema.ancestors(category):
            for member in dimension.members(category):
                ancestors = dimension.roll_up(member, category, ancestor_category)
                if len(ancestors) > 1:
                    report.add("non_strict", f"{category}:{member}",
                               f"rolls up to {len(ancestors)} members of "
                               f"{ancestor_category}: {sorted(map(str, ancestors))}",
                               dimension=schema.name)
    return report


def check_homogeneity(dimension: DimensionInstance,
                      report: Optional[ValidationReport] = None) -> ValidationReport:
    """Each member must have at least one parent in every parent category."""
    report = report if report is not None else ValidationReport()
    schema = dimension.schema
    for category in schema.categories:
        parent_categories = schema.parents(category)
        for member in dimension.members(category):
            for parent_category in parent_categories:
                parents = dimension.parents_of(category, member, parent_category)
                if not parents:
                    report.add("non_homogeneous", f"{category}:{member}",
                               f"has no parent in category {parent_category}",
                               dimension=schema.name)
    return report


def check_categorical_relations(md: MDInstance,
                                report: Optional[ValidationReport] = None) -> ValidationReport:
    """Categorical attribute values must be members of the linked category.

    This is the semantic counterpart of the paper's referential negative
    constraints of form (1): the compiled ontology enforces the same
    condition logically, this check enforces it on the raw MD instance.
    """
    report = report if report is not None else ValidationReport()
    for schema in md.relations():
        relation = md.relation(schema.name)
        for attribute in schema.categorical:
            position = schema.position_of(attribute.name)
            dimension = md.dimension(attribute.dimension)
            for row in relation:
                value = row[position]
                if not dimension.has_member(attribute.category, value):
                    report.add("dangling_categorical_value", f"{schema.name}.{attribute.name}",
                               f"value {value!r} is not a member of category "
                               f"{attribute.category!r} of dimension {attribute.dimension!r}",
                               dimension=attribute.dimension)
    return report


def validate_dimension(dimension: DimensionInstance) -> ValidationReport:
    """Run all dimension-level checks."""
    report = ValidationReport()
    dimension.schema.validate()
    check_dimension_conformance(dimension, report)
    check_strictness(dimension, report)
    check_homogeneity(dimension, report)
    return report


def validate_md_instance(md: MDInstance, require_strict: bool = True,
                         require_homogeneous: bool = False) -> ValidationReport:
    """Validate a full MD instance.

    ``require_strict`` / ``require_homogeneous`` control whether strictness
    and homogeneity findings are included (heterogeneous hierarchies are
    legal in the extended HM model, so homogeneity is off by default).
    """
    report = ValidationReport()
    for dimension in md.dimensions.values():
        dimension.schema.validate()
        check_dimension_conformance(dimension, report)
        if require_strict:
            check_strictness(dimension, report)
        if require_homogeneous:
            check_homogeneity(dimension, report)
    check_categorical_relations(md, report)
    return report
