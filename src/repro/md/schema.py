"""Dimension schemas of the Hurtado–Mendelzon multidimensional model.

A dimension schema is a directed acyclic graph of *categories* (Section II
of the paper): nodes are category names, edges go from a **child** category
to its **parent** category (``Ward → Unit → Institution`` in the Hospital
dimension of Fig. 1).  The transitive closure of the child→parent relation
is the partial order between categories that dimensional navigation moves
along: *upward* navigation (roll-up) follows the order, *downward*
navigation (drill-down) goes against it.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from ..errors import DimensionSchemaError


class DimensionSchema:
    """A named DAG of categories with a child→parent edge relation."""

    def __init__(self, name: str, categories: Iterable[str] = (),
                 child_parent_edges: Iterable[Tuple[str, str]] = ()):
        if not name:
            raise DimensionSchemaError("dimension name must be a non-empty string")
        self.name = name
        self._categories: Dict[str, None] = {}
        self._edges: Set[Tuple[str, str]] = set()
        for category in categories:
            self.add_category(category)
        for child, parent in child_parent_edges:
            self.add_edge(child, parent)

    # -- construction --------------------------------------------------------

    def add_category(self, category: str) -> str:
        """Register a category (idempotent)."""
        if not category:
            raise DimensionSchemaError(
                f"dimension {self.name!r}: category name must be non-empty")
        self._categories.setdefault(category, None)
        return category

    def add_edge(self, child: str, parent: str) -> Tuple[str, str]:
        """Add a child→parent edge; both categories are auto-registered.

        Self-loops and edges that would create a cycle are rejected — the
        category graph of an HM dimension is a DAG.
        """
        if child == parent:
            raise DimensionSchemaError(
                f"dimension {self.name!r}: category {child!r} cannot be its own parent")
        self.add_category(child)
        self.add_category(parent)
        # A cycle would arise exactly when `child` is already above `parent`.
        if child in self.ancestors(parent):
            raise DimensionSchemaError(
                f"dimension {self.name!r}: adding edge {child!r} -> {parent!r} "
                "would create a cycle in the category graph")
        self._edges.add((child, parent))
        return (child, parent)

    # -- structure ------------------------------------------------------------

    @property
    def categories(self) -> Tuple[str, ...]:
        """All categories, in registration order."""
        return tuple(self._categories)

    @property
    def edges(self) -> FrozenSet[Tuple[str, str]]:
        """All child→parent edges."""
        return frozenset(self._edges)

    def __contains__(self, category: str) -> bool:
        return category in self._categories

    def _require(self, category: str) -> None:
        if category not in self._categories:
            raise DimensionSchemaError(
                f"dimension {self.name!r} has no category {category!r}; "
                f"known categories: {sorted(self._categories)}")

    def parents(self, category: str) -> Set[str]:
        """Direct parent categories of ``category``."""
        self._require(category)
        return {parent for child, parent in self._edges if child == category}

    def children(self, category: str) -> Set[str]:
        """Direct child categories of ``category``."""
        self._require(category)
        return {child for child, parent in self._edges if parent == category}

    def ancestors(self, category: str) -> Set[str]:
        """Categories strictly above ``category`` (transitive parents)."""
        self._require(category)
        result: Set[str] = set()
        frontier = list(self.parents(category))
        while frontier:
            current = frontier.pop()
            if current in result:
                continue
            result.add(current)
            frontier.extend(self.parents(current))
        return result

    def descendants(self, category: str) -> Set[str]:
        """Categories strictly below ``category`` (transitive children)."""
        self._require(category)
        result: Set[str] = set()
        frontier = list(self.children(category))
        while frontier:
            current = frontier.pop()
            if current in result:
                continue
            result.add(current)
            frontier.extend(self.children(current))
        return result

    def is_above(self, higher: str, lower: str) -> bool:
        """``True`` iff ``higher`` is a (strict) ancestor of ``lower``."""
        return higher in self.ancestors(lower)

    def comparable(self, first: str, second: str) -> bool:
        """``True`` iff the two categories are ordered by the hierarchy."""
        return first == second or self.is_above(first, second) or self.is_above(second, first)

    def bottom_categories(self) -> Set[str]:
        """Categories with no children (the finest levels)."""
        with_children = {parent for _child, parent in self._edges}
        return {category for category in self._categories
                if category not in with_children or not self.children(category)}

    def top_categories(self) -> Set[str]:
        """Categories with no parents (the coarsest levels, often ``All``)."""
        return {category for category in self._categories if not self.parents(category)}

    def level_of(self, category: str) -> int:
        """Length of the longest path from a bottom category to ``category``."""
        self._require(category)
        children = self.children(category)
        if not children:
            return 0
        return 1 + max(self.level_of(child) for child in children)

    def height(self) -> int:
        """Longest child→parent path length in the dimension."""
        if not self._categories:
            return 0
        return max(self.level_of(category) for category in self._categories)

    def paths_between(self, lower: str, higher: str) -> List[Tuple[str, ...]]:
        """All upward category paths from ``lower`` to ``higher`` (inclusive)."""
        self._require(lower)
        self._require(higher)
        if lower == higher:
            return [(lower,)]
        paths: List[Tuple[str, ...]] = []
        for parent in self.parents(lower):
            if parent == higher or self.is_above(higher, parent):
                for tail in self.paths_between(parent, higher):
                    paths.append((lower,) + tail)
        return paths

    def topological_order(self) -> List[str]:
        """Categories ordered bottom-up (children before parents)."""
        order: List[str] = []
        remaining = dict(self._categories)
        placed: Set[str] = set()
        while remaining:
            progress = False
            for category in list(remaining):
                if self.children(category) <= placed:
                    order.append(category)
                    placed.add(category)
                    del remaining[category]
                    progress = True
            if not progress:  # pragma: no cover - construction forbids cycles
                raise DimensionSchemaError(
                    f"dimension {self.name!r}: category graph has a cycle")
        return order

    def validate(self) -> None:
        """Re-check structural well-formedness (acyclicity, known categories)."""
        for child, parent in self._edges:
            self._require(child)
            self._require(parent)
        self.topological_order()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DimensionSchema):
            return NotImplemented
        return (self.name == other.name
                and set(self._categories) == set(other._categories)
                and self._edges == other._edges)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DimensionSchema({self.name!r}, categories={list(self._categories)}, "
                f"edges={sorted(self._edges)})")
