"""The extended Hurtado–Mendelzon multidimensional model.

Dimension schemas (category DAGs), dimension instances (members and the
member-level roll-up relation), categorical relations linked to categories
at arbitrary levels, relation-level navigation (roll-up / drill-down) and
model validation (conformance, strictness, homogeneity).
"""

from .schema import DimensionSchema
from .relations import CategoricalAttribute, CategoricalRelationSchema
from .instance import DimensionInstance, MDInstance
from .navigation import drill_down_relation, members_reachable, roll_up_relation
from .validation import (ValidationIssue, ValidationReport, check_categorical_relations,
                         check_dimension_conformance, check_homogeneity, check_strictness,
                         validate_dimension, validate_md_instance)
from .builder import DimensionBuilder, MDModelBuilder

__all__ = [
    "DimensionSchema",
    "CategoricalAttribute",
    "CategoricalRelationSchema",
    "DimensionInstance",
    "MDInstance",
    "drill_down_relation",
    "members_reachable",
    "roll_up_relation",
    "ValidationIssue",
    "ValidationReport",
    "check_categorical_relations",
    "check_dimension_conformance",
    "check_homogeneity",
    "check_strictness",
    "validate_dimension",
    "validate_md_instance",
    "DimensionBuilder",
    "MDModelBuilder",
]
