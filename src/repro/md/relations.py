"""Categorical relations — the paper's extension of HM fact tables.

A categorical relation (Section II) generalizes a fact table: its
*categorical attributes* take values from the members of a category of a
dimension — not necessarily a bottom category, and possibly from several
different dimensions — while its *non-categorical attributes* range over an
arbitrary domain.  In the running example, ``PatientWard(Ward, Day; Patient)``
has categorical attributes ``Ward`` (Hospital dimension, Ward category) and
``Day`` (Time dimension, Day category), and non-categorical attribute
``Patient``.

The paper writes a categorical atom as ``R(ē; ā)`` with ``ē`` the categorical
and ``ā`` the non-categorical attributes; this module keeps the same
convention: categorical attributes come first, in declaration order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import CategoricalRelationError
from ..relational.schema import RelationSchema


@dataclass(frozen=True)
class CategoricalAttribute:
    """A categorical attribute: a name linked to a category of a dimension."""

    name: str
    dimension: str
    category: str

    def __post_init__(self):
        if not self.name or not self.dimension or not self.category:
            raise CategoricalRelationError(
                "categorical attribute needs a name, a dimension and a category; "
                f"got name={self.name!r}, dimension={self.dimension!r}, "
                f"category={self.category!r}")

    def __str__(self) -> str:
        return f"{self.name}→{self.dimension}.{self.category}"


class CategoricalRelationSchema:
    """Schema of a categorical relation: ``R(ē; ā)``.

    Parameters
    ----------
    name:
        The relation name.
    categorical:
        The categorical attributes, in order.
    non_categorical:
        The names of the non-categorical attributes, in order.
    """

    def __init__(self, name: str,
                 categorical: Sequence[CategoricalAttribute],
                 non_categorical: Sequence[str] = ()):
        if not name:
            raise CategoricalRelationError("categorical relation name must be non-empty")
        self.name = name
        self.categorical: Tuple[CategoricalAttribute, ...] = tuple(categorical)
        self.non_categorical: Tuple[str, ...] = tuple(non_categorical)
        if not self.categorical:
            raise CategoricalRelationError(
                f"categorical relation {name!r} needs at least one categorical attribute")
        names = [attribute.name for attribute in self.categorical] + list(self.non_categorical)
        if len(set(names)) != len(names):
            raise CategoricalRelationError(
                f"categorical relation {name!r} has duplicate attribute names: {names}")

    # -- structure ------------------------------------------------------------

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        """All attribute names, categorical first (paper convention)."""
        return tuple(a.name for a in self.categorical) + self.non_categorical

    @property
    def arity(self) -> int:
        """Total number of attributes."""
        return len(self.categorical) + len(self.non_categorical)

    def categorical_positions(self) -> List[int]:
        """0-based positions of the categorical attributes."""
        return list(range(len(self.categorical)))

    def non_categorical_positions(self) -> List[int]:
        """0-based positions of the non-categorical attributes."""
        return list(range(len(self.categorical), self.arity))

    def is_categorical_position(self, position: int) -> bool:
        """``True`` if the 0-based ``position`` is a categorical attribute."""
        return 0 <= position < len(self.categorical)

    def categorical_attribute(self, name: str) -> CategoricalAttribute:
        """Look up a categorical attribute by name."""
        for attribute in self.categorical:
            if attribute.name == name:
                return attribute
        raise CategoricalRelationError(
            f"categorical relation {self.name!r} has no categorical attribute {name!r}")

    def position_of(self, attribute_name: str) -> int:
        """0-based position of an attribute (categorical or not)."""
        try:
            return self.attribute_names.index(attribute_name)
        except ValueError:
            raise CategoricalRelationError(
                f"categorical relation {self.name!r} has no attribute {attribute_name!r}; "
                f"known attributes: {self.attribute_names}") from None

    def attributes_linked_to(self, dimension: str) -> List[CategoricalAttribute]:
        """Categorical attributes linked to ``dimension``."""
        return [a for a in self.categorical if a.dimension == dimension]

    def dimensions(self) -> List[str]:
        """Dimensions this relation is linked to (duplicates removed, ordered)."""
        seen: List[str] = []
        for attribute in self.categorical:
            if attribute.dimension not in seen:
                seen.append(attribute.dimension)
        return seen

    def to_relation_schema(self) -> RelationSchema:
        """The plain relational schema underlying this categorical relation."""
        return RelationSchema(self.name, self.attribute_names)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CategoricalRelationSchema):
            return NotImplemented
        return (self.name == other.name
                and self.categorical == other.categorical
                and self.non_categorical == other.non_categorical)

    def __str__(self) -> str:
        cat = ", ".join(str(a) for a in self.categorical)
        non_cat = ", ".join(self.non_categorical)
        return f"{self.name}({cat}; {non_cat})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CategoricalRelationSchema({self})"
