"""Relation-level dimensional navigation: roll-up and drill-down.

These helpers implement the two navigation directions of Section I/III at
the level of whole categorical relations, independently of the Datalog±
machinery — they are the "procedural" counterparts of dimensional rules of
form (4) and are used by the MD-model validation code, by examples, and as
an independent oracle in the test-suite (the chase over the compiled
ontology must produce the same tuples that direct navigation produces).

* :func:`roll_up_relation` re-expresses a categorical relation at a higher
  category (e.g. ``PatientWard`` at ``Ward`` level → ``PatientUnit`` at
  ``Unit`` level), as in rule (7) of the paper.
* :func:`drill_down_relation` re-expresses it at a lower category, producing
  one tuple per child member and filling unknown non-categorical values with
  fresh labeled nulls, as in rule (8)/Example 5.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

from ..errors import NavigationError
from ..relational.instance import Relation
from ..relational.values import NullFactory
from .instance import DimensionInstance, MDInstance
from .relations import CategoricalAttribute, CategoricalRelationSchema


def _navigated_schema(source: CategoricalRelationSchema, attribute: str,
                      target_category: str, new_name: str,
                      extra_non_categorical: Sequence[str] = ()) -> CategoricalRelationSchema:
    """Schema of the navigated relation: same shape, retargeted attribute."""
    categorical = []
    for attr in source.categorical:
        if attr.name == attribute:
            categorical.append(CategoricalAttribute(attr.name, attr.dimension, target_category))
        else:
            categorical.append(attr)
    return CategoricalRelationSchema(
        new_name, categorical, tuple(source.non_categorical) + tuple(extra_non_categorical))


def roll_up_relation(md: MDInstance, relation_name: str, attribute: str,
                     target_category: str, new_name: Optional[str] = None) -> Relation:
    """Upward navigation of one categorical attribute of a relation.

    Every tuple whose ``attribute`` value rolls up to one or more members of
    ``target_category`` produces one tuple per such ancestor (for strict
    dimensions this is exactly one).  Tuples whose member has no ancestor in
    the target category are dropped — there is nothing to navigate to.
    """
    schema = md.relation_schema(relation_name)
    source = md.relation(relation_name)
    cat_attr = schema.categorical_attribute(attribute)
    dimension = md.dimension(cat_attr.dimension)
    if not dimension.schema.is_above(target_category, cat_attr.category):
        raise NavigationError(
            f"cannot roll up {relation_name}.{attribute} from {cat_attr.category!r} "
            f"to {target_category!r}: not an ancestor category in dimension "
            f"{cat_attr.dimension!r}")
    result_name = new_name or f"{relation_name}_{target_category}"
    result_schema = _navigated_schema(schema, attribute, target_category, result_name)
    result = Relation(result_schema.to_relation_schema())
    position = schema.position_of(attribute)
    for row in source:
        member = row[position]
        for ancestor in dimension.roll_up(member, cat_attr.category, target_category):
            new_row = list(row)
            new_row[position] = ancestor
            result.add(new_row)
    return result


def drill_down_relation(md: MDInstance, relation_name: str, attribute: str,
                        target_category: str, new_name: Optional[str] = None,
                        extra_non_categorical: Sequence[str] = (),
                        null_factory: Optional[NullFactory] = None) -> Relation:
    """Downward navigation of one categorical attribute of a relation.

    Every tuple produces one tuple per descendant member in the target
    category (a unit drills down to *all* its wards, cf. Example 2).  When
    the navigated relation has additional non-categorical attributes that the
    source cannot provide (``extra_non_categorical``, e.g. the ``Shift``
    attribute in rule (8)), each generated tuple gets a fresh labeled null
    for them, mirroring the existential variables of the dimensional rule.
    """
    schema = md.relation_schema(relation_name)
    source = md.relation(relation_name)
    cat_attr = schema.categorical_attribute(attribute)
    dimension = md.dimension(cat_attr.dimension)
    if not dimension.schema.is_above(cat_attr.category, target_category):
        raise NavigationError(
            f"cannot drill down {relation_name}.{attribute} from {cat_attr.category!r} "
            f"to {target_category!r}: not a descendant category in dimension "
            f"{cat_attr.dimension!r}")
    nulls = null_factory if null_factory is not None else NullFactory("d")
    result_name = new_name or f"{relation_name}_{target_category}"
    result_schema = _navigated_schema(schema, attribute, target_category, result_name,
                                      extra_non_categorical)
    result = Relation(result_schema.to_relation_schema())
    position = schema.position_of(attribute)
    for row in source:
        member = row[position]
        for descendant in dimension.drill_down(member, cat_attr.category, target_category):
            new_row = list(row)
            new_row[position] = descendant
            new_row.extend(nulls.fresh() for _ in extra_non_categorical)
            result.add(new_row)
    return result


def members_reachable(dimension: DimensionInstance, member: Any,
                      from_category: str, to_category: str) -> Tuple[str, ...]:
    """Reachable members in ``to_category`` from ``member``, upward or downward.

    A convenience used by reports: picks the navigation direction from the
    relative position of the two categories in the schema.
    """
    if from_category == to_category:
        return (member,) if dimension.has_member(from_category, member) else ()
    if dimension.schema.is_above(to_category, from_category):
        found = dimension.roll_up(member, from_category, to_category)
    elif dimension.schema.is_above(from_category, to_category):
        found = dimension.drill_down(member, from_category, to_category)
    else:
        raise NavigationError(
            f"categories {from_category!r} and {to_category!r} are not comparable "
            f"in dimension {dimension.schema.name!r}")
    return tuple(sorted(found, key=str))
