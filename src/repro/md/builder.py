"""Fluent builders for dimensions and multidimensional instances.

The builders remove the boilerplate of wiring schemas, instances and
categorical relations together, and are the API the examples and the
synthetic workload generator use.  A typical construction of the paper's
Hospital dimension reads::

    hospital = (DimensionBuilder("Hospital")
                .category_chain("Ward", "Unit", "Institution")
                .category("AllHospital", parents_of=["Institution"])
                .member_edge("Ward", "W1", "Unit", "Standard")
                .member_edge("Ward", "W2", "Unit", "Standard")
                ...
                .build())
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence, Tuple

from ..errors import DimensionSchemaError
from .instance import DimensionInstance, MDInstance
from .relations import CategoricalAttribute, CategoricalRelationSchema
from .schema import DimensionSchema


class DimensionBuilder:
    """Builds a :class:`DimensionInstance` (schema + members + edges)."""

    def __init__(self, name: str):
        self._schema = DimensionSchema(name)
        self._members: List[Tuple[str, Any]] = []
        self._edges: List[Tuple[str, Any, str, Any]] = []

    # -- schema ---------------------------------------------------------------

    def category(self, name: str, parents_of: Sequence[str] = (),
                 children_of: Sequence[str] = ()) -> "DimensionBuilder":
        """Declare a category, optionally wiring it to existing categories.

        ``parents_of`` lists categories *below* the new one (the new category
        becomes their parent); ``children_of`` lists categories *above* it.
        """
        self._schema.add_category(name)
        for child in parents_of:
            self._schema.add_edge(child, name)
        for parent in children_of:
            self._schema.add_edge(name, parent)
        return self

    def category_chain(self, *names: str) -> "DimensionBuilder":
        """Declare a bottom-to-top chain of categories: ``Ward, Unit, Institution``."""
        if len(names) < 1:
            raise DimensionSchemaError("category_chain needs at least one category")
        for name in names:
            self._schema.add_category(name)
        for child, parent in zip(names, names[1:]):
            self._schema.add_edge(child, parent)
        return self

    def edge(self, child_category: str, parent_category: str) -> "DimensionBuilder":
        """Declare one child→parent category edge."""
        self._schema.add_edge(child_category, parent_category)
        return self

    # -- instance -------------------------------------------------------------

    def member(self, category: str, *members: Any) -> "DimensionBuilder":
        """Add members to a category."""
        for value in members:
            self._members.append((category, value))
        return self

    def member_edge(self, child_category: str, child_member: Any,
                    parent_category: str, parent_member: Any) -> "DimensionBuilder":
        """Add a member-level child→parent edge (members auto-registered)."""
        self._edges.append((child_category, child_member, parent_category, parent_member))
        return self

    def member_edges(self, child_category: str, parent_category: str,
                     pairs: Iterable[Tuple[Any, Any]]) -> "DimensionBuilder":
        """Bulk variant of :meth:`member_edge` for one category pair."""
        for child_member, parent_member in pairs:
            self._edges.append((child_category, child_member, parent_category, parent_member))
        return self

    def build(self) -> DimensionInstance:
        """Materialize the dimension instance."""
        self._schema.validate()
        instance = DimensionInstance(self._schema)
        for category, member in self._members:
            instance.add_member(category, member)
        for child_category, child_member, parent_category, parent_member in self._edges:
            instance.add_edge(child_category, child_member, parent_category, parent_member)
        return instance


class MDModelBuilder:
    """Builds an :class:`MDInstance` out of dimensions and categorical relations."""

    def __init__(self):
        self._instance = MDInstance()

    def dimension(self, dimension: DimensionInstance) -> "MDModelBuilder":
        """Attach an already-built dimension instance."""
        self._instance.add_dimension(dimension)
        return self

    def relation(self, name: str,
                 categorical: Sequence[Tuple[str, str, str]],
                 non_categorical: Sequence[str] = (),
                 rows: Iterable[Sequence[Any]] = ()) -> "MDModelBuilder":
        """Declare a categorical relation.

        ``categorical`` is a sequence of ``(attribute, dimension, category)``
        triples; ``rows`` optionally loads the initial extension.
        """
        schema = CategoricalRelationSchema(
            name,
            [CategoricalAttribute(attr, dim, cat) for attr, dim, cat in categorical],
            non_categorical,
        )
        self._instance.add_relation(schema, rows)
        return self

    def tuples(self, name: str, rows: Iterable[Sequence[Any]]) -> "MDModelBuilder":
        """Add tuples to an already-declared categorical relation."""
        self._instance.add_tuples(name, rows)
        return self

    def build(self) -> MDInstance:
        """Return the assembled multidimensional instance."""
        return self._instance
